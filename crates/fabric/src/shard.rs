//! A worker shard: the per-core unit of the fabric.
//!
//! The fabric partitions the keyspace by virtual group — the same unit the
//! paper's consistent hashing and failure recovery use (§4.1, §5.2) — and
//! steers every query to the shard owning its key's group. A shard therefore
//! sees *all* hops of every chain it is responsible for, and runs the chain
//! to completion locally: head, replicas and tail are the very same
//! [`NetChainSwitch`] program instances the discrete-event simulator hosts,
//! executed back to back instead of separated by simulated links. Because
//! per-key state is touched by exactly one shard, shards share nothing and
//! scale linearly with cores.
//!
//! Processing is batched in two layers: the shard pulls bursts of frames
//! from its ingress rings, and inside a burst the chain traversal runs in
//! *waves* — all packets currently addressed to the same switch are handed
//! to the switch together, keeping that switch's tables hot while the burst
//! flows through the chain stage by stage, like a hardware pipeline.
//!
//! The first wave runs as an explicit **staged pipeline**
//! ([`Shard::process_burst`]): validate+parse a chunk of up to
//! [`BATCH_WIDTH`] frames branch-free into a structure-of-arrays scratch,
//! batch-hash all keys, probe the destination switches' indexes with the
//! precomputed hashes, then execute — read queries whose probe succeeded
//! answer straight from the register arrays without ever materialising an
//! owned packet. The pre-staging scalar path is kept as
//! [`Shard::process_burst_scalar`], the semantic baseline the staged path is
//! differentially tested against.
//!
//! ## Control plane hooks
//!
//! The live control plane (`netchain-livectl`) programs a shard between
//! bursts exactly the way the paper's controller programs switches:
//!
//! * [`Shard::kill_switch`] is the fault injector's hook — the replica stops
//!   being addressable, freezing its state like a fail-stopped device.
//! * [`Shard::install_rule`] / [`Shard::remove_rule`] install failover /
//!   recovery rules into **every live switch replica**. In the physical
//!   network the controller programs the failed switch's *neighbours*; in the
//!   fabric every live switch is a potential neighbour (chains hop directly
//!   from switch to switch), so programming all of them is the same thing.
//! * Packets addressed to a failed (or simply absent) switch are routed
//!   through the shard's *gateway* — the lowest-IP live active switch, which
//!   plays the role of the client's ToR switch in the testbed: its rule table
//!   decides whether the packet fails over, blocks, or redirects. Without a
//!   matching rule the packet is dropped and counted `unroutable`, exactly
//!   like a packet sailing towards a dead device in the simulator.
//! * [`Shard::export_group`] / [`Shard::import_entries`] move register state
//!   between switch replicas for the two-phase chain repair, with the same
//!   group filtering the simulator's switch agent applies.
//!
//! ## The packet pool
//!
//! Parsing recycles [`NetChainPacket`] buffers through a small pool
//! ([`netchain_wire::PacketPool`]): the chain list and value vectors of a
//! retired packet are refilled in place for the next frame, removing the
//! last per-packet allocation on the write path (reads never allocated).

use crate::stats::ShardStats;
use netchain_core::query_evidence;
use netchain_core::HashRing;
use netchain_switch::kv::ExportedEntry;
use netchain_switch::{
    stable_hash_batch, DropReason, FailoverRule, NetChainSwitch, PipelineConfig, ProbeGauges,
    RuleScope, StagedOutcome, StagedPacket, SwitchAction,
};
use netchain_telemetry::{
    key_fingerprint, trace_id, Evidence, EvidenceOp, HopRole, PacketTrace, TraceConfig, TraceSink,
};
use netchain_wire::{
    BatchEncoder, BatchView, Ipv4Addr, Key, NetChainPacket, OpCode, PacketPool, PacketView, Value,
    BATCH_WIDTH,
};
use std::collections::{HashMap, HashSet};

/// The steering rule, in one place: `key`'s virtual group modulo the shard
/// count. Everything that partitions by key — shard ownership, client
/// steering, control-plane population — must route through this function so
/// the three can never drift apart.
pub fn shard_of_key(ring: &HashRing, key: &Key, num_shards: usize) -> usize {
    ring.group_of(key) as usize % num_shards
}

/// Identifies the client a reply frame belongs to, from the destination IP
/// (`Ipv4Addr::for_host(id)` addressing: `10.1.hi.lo`).
pub fn client_id_of(ip: Ipv4Addr) -> Option<u32> {
    if ip.0[0] == 10 && ip.0[1] == 1 {
        Some(u32::from(ip.0[2]) << 8 | u32::from(ip.0[3]))
    } else {
        None
    }
}

/// One keyspace shard hosting shard-local replicas of every ring switch
/// (plus any spares held out of the ring for failure recovery).
pub struct Shard {
    id: usize,
    num_shards: usize,
    ring: HashRing,
    switches: HashMap<Ipv4Addr, NetChainSwitch>,
    /// Switches the fault injector killed: no longer addressable; their
    /// replica state is frozen as of the kill (fail-stop).
    failed: HashSet<Ipv4Addr>,
    stats: ShardStats,
    /// Scratch: the current wave of in-flight packets (reused across bursts).
    wave: Vec<NetChainPacket>,
    next_wave: Vec<NetChainPacket>,
    group: Vec<NetChainPacket>,
    actions: Vec<SwitchAction>,
    /// Retired packets whose allocations the parse path reuses.
    pool: PacketPool,
    /// Staged-pipeline scratch: the stage-3 probe inputs gathered per
    /// destination switch, and the per-lane probe results scattered back.
    probe_keys: Vec<Key>,
    probe_hashes: Vec<u64>,
    probe_lanes: Vec<usize>,
    probe_out: Vec<Option<usize>>,
    /// Stage-4 per-item outcomes (reused across wave groups).
    outcomes: Vec<StagedOutcome>,
    /// In-band per-hop trace stamping, when enabled. `None` keeps the data
    /// plane exactly as before: one branch per wave group and nothing else.
    tracer: Option<ShardTracer>,
}

/// Shard-side trace recorder: a sink plus the run's wall-clock origin.
struct ShardTracer {
    sink: TraceSink,
    t0: std::time::Instant,
}

impl Shard {
    /// Creates shard `id` of `num_shards` over the given ring, with one
    /// switch instance per ring member.
    pub fn new(id: usize, num_shards: usize, ring: HashRing, pipeline: PipelineConfig) -> Self {
        Self::with_spares(id, num_shards, ring, pipeline, &[])
    }

    /// Like [`Shard::new`], but also hosting `spares`: switches outside the
    /// consistent-hash ring, held in reserve as recovery replacements. They
    /// start empty and receive no traffic until a redirect rule points at
    /// them.
    pub fn with_spares(
        id: usize,
        num_shards: usize,
        ring: HashRing,
        pipeline: PipelineConfig,
        spares: &[Ipv4Addr],
    ) -> Self {
        assert!(num_shards > 0 && id < num_shards);
        let switches: HashMap<Ipv4Addr, NetChainSwitch> = ring
            .switches()
            .iter()
            .chain(spares.iter())
            .map(|&ip| (ip, NetChainSwitch::new(ip, pipeline)))
            .collect();
        Shard {
            id,
            num_shards,
            ring,
            switches,
            failed: HashSet::new(),
            stats: ShardStats::default(),
            wave: Vec::new(),
            next_wave: Vec::new(),
            group: Vec::new(),
            actions: Vec::new(),
            pool: PacketPool::new(),
            probe_keys: Vec::new(),
            probe_hashes: Vec::new(),
            probe_lanes: Vec::new(),
            probe_out: Vec::new(),
            outcomes: Vec::new(),
            tracer: None,
        }
    }

    /// Turns on in-band trace stamping: every wave group handed to a switch
    /// stamps its sampled packets with that switch's IP and the wall-clock
    /// offset from `t0` (shared by all shards and clients of a run, so
    /// stamps from different threads are comparable).
    pub fn enable_tracing(&mut self, config: TraceConfig, t0: std::time::Instant) {
        self.tracer = Some(ShardTracer {
            sink: TraceSink::new(config),
            t0,
        });
    }

    /// Drains the trace fragments recorded by this shard.
    pub fn take_traces(&mut self) -> Vec<PacketTrace> {
        self.tracer
            .as_mut()
            .map(|t| t.sink.drain())
            .unwrap_or_default()
    }

    /// Publishes executor-level gauges — ingress queue depth/capacity and
    /// coarse cumulative latency buckets — to every switch replica, so an
    /// in-band `Stat` probe answered by any of them reports the shard's
    /// current view. Executors call this at burst boundaries, never per
    /// packet, which is what keeps probe support off the hot path.
    pub fn set_probe_gauges(&mut self, gauges: ProbeGauges) {
        for switch in self.switches.values_mut() {
            switch.set_probe_gauges(gauges);
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// True if this shard owns `key`'s virtual group.
    pub fn owns(&self, key: &Key) -> bool {
        shard_of_key(&self.ring, key, self.num_shards) == self.id
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Inserts `key` on every switch of its chain (control-plane population,
    /// the fabric equivalent of `NetChainCluster::populate_key`). Only keys
    /// this shard [`owns`](Self::owns) may be inserted.
    pub fn populate(&mut self, key: Key, value: &Value) {
        assert!(self.owns(&key), "key steered to the wrong shard");
        for ip in self.ring.chain_for_key(&key).switches {
            self.switches
                .get_mut(&ip)
                .expect("chain switches exist in the shard")
                .kv_mut()
                .insert(key, value)
                .expect("shard store sized for the workload");
        }
    }

    /// Read access to a switch replica (differential tests, experiments).
    pub fn switch(&self, ip: Ipv4Addr) -> Option<&NetChainSwitch> {
        self.switches.get(&ip)
    }

    /// The switch IPs this shard hosts.
    pub fn switch_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.switches.keys().copied()
    }

    // ---- Control-plane hooks (the live controller's verbs) ----

    /// Fail-stops a switch replica: it stops being addressable and its state
    /// freezes. Queries towards it fall to the gateway's rule table (or are
    /// dropped as unroutable until rules arrive).
    pub fn kill_switch(&mut self, ip: Ipv4Addr) {
        self.failed.insert(ip);
    }

    /// True if the fault injector killed `ip` on this shard.
    pub fn is_failed(&self, ip: Ipv4Addr) -> bool {
        self.failed.contains(&ip)
    }

    /// Installs a failover/recovery rule for traffic destined to `failed_ip`
    /// into every live switch replica (= every potential neighbour of the
    /// failed switch; see the module docs).
    pub fn install_rule(&mut self, failed_ip: Ipv4Addr, rule: FailoverRule) {
        for (&ip, switch) in self.switches.iter_mut() {
            if !self.failed.contains(&ip) {
                switch.forwarding_mut().install(failed_ip, rule);
            }
        }
    }

    /// Removes a rule (matched by priority and scope) from every replica.
    pub fn remove_rule(&mut self, failed_ip: Ipv4Addr, priority: u8, scope: RuleScope) {
        for switch in self.switches.values_mut() {
            switch.forwarding_mut().remove(failed_ip, priority, scope);
        }
    }

    /// Sets the session number switch `ip` stamps on writes it sequences
    /// (head replacement, §5.2).
    pub fn set_session(&mut self, ip: Ipv4Addr, session: u64) {
        if let Some(switch) = self.switches.get_mut(&ip) {
            switch.set_session(session);
        }
    }

    /// Activates or deactivates query processing on switch `ip` (recovery
    /// phase 2 activates the replacement).
    pub fn set_active(&mut self, ip: Ipv4Addr, active: bool) {
        if let Some(switch) = self.switches.get_mut(&ip) {
            switch.set_active(active);
        }
    }

    /// Exports switch `ip`'s entries for virtual group `group` (out of
    /// `modulus` groups) — the donor side of chain repair. The filter is
    /// identical to the simulator switch agent's `ExportRequest` handling.
    pub fn export_group(&self, ip: Ipv4Addr, group: u32, modulus: u32) -> Vec<ExportedEntry> {
        let Some(switch) = self.switches.get(&ip) else {
            return Vec::new();
        };
        switch
            .kv()
            .export_entries()
            .into_iter()
            .filter(|entry| (entry.key.stable_hash() % u64::from(modulus.max(1))) as u32 == group)
            .collect()
    }

    /// Imports entries into switch `ip`'s store — the replacement side of
    /// chain repair. Stale entries never clobber newer local state
    /// (Invariant 1 is preserved if synchronisation races a live write).
    pub fn import_entries(&mut self, ip: Ipv4Addr, entries: &[ExportedEntry]) {
        if let Some(switch) = self.switches.get_mut(&ip) {
            for entry in entries {
                let _ = switch.kv_mut().import_entry(entry);
            }
        }
    }

    /// The shard's gateway: the lowest-IP live, active switch. Plays the ToR
    /// switch's role for packets addressed to a dead device — its rule table
    /// decides their fate.
    fn gateway_ip(&self) -> Option<Ipv4Addr> {
        self.switches
            .iter()
            .filter(|(ip, sw)| !self.failed.contains(ip) && sw.is_active())
            .map(|(&ip, _)| ip)
            .min()
    }

    // ---- Data plane ----

    /// Processes one burst of ingress frames to completion, encoding every
    /// generated reply into `replies` (in completion order).
    ///
    /// This is the **staged** hot path, run in four explicit stages over
    /// chunks of up to [`BATCH_WIDTH`] frames:
    ///
    /// 1. **Validate + parse** — [`BatchView::parse`] runs the branch-free
    ///    [`netchain_wire::validate_frame`] over the chunk and fills a
    ///    structure-of-arrays scratch with the fields the later stages need.
    /// 2. **Hash** — [`stable_hash_batch`] hashes every key of the chunk in
    ///    one lane-major pass.
    /// 3. **Probe** — eligible read lanes are probed against their
    ///    destination switch's index with the precomputed hashes
    ///    (`SwitchKvStore::probe_slots`), touching the register slots so they
    ///    are warm when stage 4 reads them. Mutations never touch the index
    ///    (inserts/removes are control-plane only), so slots probed here stay
    ///    correct for the whole burst.
    /// 4. **Execute** — [`NetChainSwitch::step_batch_staged`] runs the wave
    ///    groups in frame order: probed reads ride the fast lane (the reply
    ///    is emitted straight from the query frame and the register arrays,
    ///    no owned packet), everything else takes the scalar path unchanged.
    ///
    /// Chain hops past the first wave continue through the same wave loop as
    /// [`Shard::process_burst_scalar`]; semantics — per-key ordering within a
    /// burst, reply order, stats, trace stamps — are identical to the scalar
    /// path (pinned by tests).
    pub fn process_burst<'a>(
        &mut self,
        frames: impl Iterator<Item = &'a [u8]>,
        replies: &mut BatchEncoder,
    ) {
        debug_assert!(self.wave.is_empty());
        let mut frames = frames.fuse();
        let mut chunk: [&'a [u8]; BATCH_WIDTH] = [&[]; BATCH_WIDTH];
        let mut items: Vec<(Ipv4Addr, StagedPacket<'a>)> = Vec::with_capacity(BATCH_WIDTH);
        let mut group: Vec<StagedPacket<'a>> = Vec::with_capacity(BATCH_WIDTH);
        let mut started = false;
        loop {
            let mut n = 0;
            while n < BATCH_WIDTH {
                match frames.next() {
                    Some(f) => {
                        chunk[n] = f;
                        n += 1;
                    }
                    None => break,
                }
            }
            if n == 0 {
                break;
            }
            self.stats.frames_in += n as u64;

            // Stage 1: validate + parse the chunk into SoA lanes.
            let bv = BatchView::parse(&chunk[..n]);
            let batch = bv.batch();
            self.stats.parse_errors += batch.invalid_count() as u64;
            if batch.invalid_count() == n {
                continue;
            }
            if !started {
                started = true;
                self.stats.bursts += 1;
                // The chunks of a burst are all part of wave 1.
                self.stats.waves += 1;
            }

            // Stage 2: hash every key lane in one pass.
            let mut hashes = [0u64; BATCH_WIDTH];
            stable_hash_batch(batch.keys(), &mut hashes);

            // Stage 3: pick the fast-lane reads and probe their slots. A lane
            // is eligible iff the switch would run exactly `process_read`
            // followed by an unobstructed reply bounce: a pure read query
            // (no carried value, so no recirculation accounting) addressed
            // to a live, active switch with no failover rules installed.
            let mut slots: [Option<usize>; BATCH_WIDTH] = [None; BATCH_WIDTH];
            let mut fast: u32 = 0;
            let any_failed = !self.failed.is_empty();
            let mut last_dst = 0u32;
            let mut last_ok = false;
            for i in 0..n {
                if !batch.is_netchain(i)
                    || batch.op(i) != OpCode::Read.to_u8()
                    || batch.value_len(i) != 0
                {
                    continue;
                }
                // Lanes repeating the previous destination reuse its verdict
                // (bursts cluster by chain, so this collapses most lookups).
                let dst_u32 = batch.dst(i);
                if dst_u32 != last_dst || i == 0 {
                    last_dst = dst_u32;
                    let dst = Ipv4Addr(dst_u32.to_be_bytes());
                    last_ok = (!any_failed || !self.failed.contains(&dst))
                        && self
                            .switches
                            .get(&dst)
                            .is_some_and(|sw| sw.is_active() && sw.forwarding().is_empty());
                }
                if last_ok {
                    fast |= 1 << i;
                }
            }
            let mut pending = fast;
            while pending != 0 {
                let first = pending.trailing_zeros() as usize;
                let dst_u32 = batch.dst(first);
                self.probe_keys.clear();
                self.probe_hashes.clear();
                self.probe_lanes.clear();
                self.probe_out.clear();
                let mut rest = pending;
                while rest != 0 {
                    let i = rest.trailing_zeros() as usize;
                    rest &= rest - 1;
                    if batch.dst(i) == dst_u32 {
                        self.probe_keys.push(batch.key(i));
                        self.probe_hashes.push(hashes[i]);
                        self.probe_lanes.push(i);
                        pending &= !(1 << i);
                    }
                }
                let dst = Ipv4Addr(dst_u32.to_be_bytes());
                let sw = self.switches.get(&dst).expect("eligibility checked above");
                sw.kv()
                    .probe_slots(&self.probe_keys, &self.probe_hashes, &mut self.probe_out);
                for (slot, &lane) in self.probe_out.iter().zip(&self.probe_lanes) {
                    slots[lane] = *slot;
                }
            }

            // Build the chunk's wave-1 items in frame order: fast-lane reads
            // borrow their frame, everything else is materialised through the
            // packet pool exactly like the scalar parse.
            items.clear();
            for (i, &slot) in slots.iter().enumerate().take(n) {
                if !batch.is_valid(i) {
                    continue;
                }
                if fast & (1 << i) != 0 {
                    items.push((
                        Ipv4Addr(batch.dst(i).to_be_bytes()),
                        StagedPacket::FastRead {
                            frame: bv.frame(i),
                            slot,
                            key: batch.key(i),
                            client: Ipv4Addr(batch.src(i).to_be_bytes()),
                            request_id: batch.request_id(i),
                        },
                    ));
                } else {
                    let pkt = self.pool.take(&bv.view(i));
                    items.push((pkt.ip.dst, StagedPacket::Owned(pkt)));
                }
            }

            // Stage 4: execute the chunk's wave-1 groups (consecutive items
            // with the same destination, as in the scalar wave loop).
            let mut iter = items.drain(..).peekable();
            while let Some((dst, item)) = iter.next() {
                group.push(item);
                while iter.peek().is_some_and(|(d, _)| *d == dst) {
                    group.push(iter.next().expect("peek said there is one").1);
                }
                let target = if self.failed.contains(&dst) || !self.switches.contains_key(&dst) {
                    self.gateway_ip()
                } else {
                    Some(dst)
                };
                if let (Some(tracer), Some(hop)) = (&mut self.tracer, target) {
                    // One clock read per wave group, as on the scalar path.
                    // Evidence (a pre-execution register read) is gathered
                    // only for packets the sink actually samples, so the
                    // common unsampled packet costs one hash + one branch.
                    let hop_ip = u32::from_be_bytes(hop.0);
                    let at_ns = tracer.t0.elapsed().as_nanos() as u64;
                    let sw = self.switches.get(&hop);
                    for item in &group {
                        match item {
                            StagedPacket::FastRead {
                                slot,
                                key,
                                client,
                                request_id,
                                ..
                            } => {
                                let id = trace_id(u32::from_be_bytes(client.0), *request_id);
                                if !tracer.sink.samples(id) {
                                    continue;
                                }
                                // Fast-lane eligibility pinned hop == dst, so
                                // the stage-3 slot is this switch's.
                                match sw {
                                    Some(sw) => {
                                        let kv = sw.kv();
                                        let (ok, (session, seq)) =
                                            match slot.filter(|&s| kv.is_valid(s)) {
                                                Some(s) => (true, kv.ordering(s)),
                                                None => (false, (0, 0)),
                                            };
                                        tracer.sink.stamp_with(
                                            id,
                                            hop_ip,
                                            at_ns,
                                            Evidence {
                                                op: EvidenceOp::Read,
                                                role: HopRole::Tail,
                                                ok,
                                                key_fp: key_fingerprint(key.stable_hash()),
                                                session,
                                                seq,
                                            },
                                        );
                                    }
                                    None => tracer.sink.stamp(id, hop_ip, at_ns),
                                }
                            }
                            StagedPacket::Owned(p) => {
                                let id =
                                    trace_id(u32::from_be_bytes(p.ip.src.0), p.netchain.request_id);
                                if !tracer.sink.samples(id) {
                                    continue;
                                }
                                match sw.and_then(|sw| query_evidence(sw, &p.netchain)) {
                                    Some(ev) => tracer.sink.stamp_with(id, hop_ip, at_ns, ev),
                                    None => tracer.sink.stamp(id, hop_ip, at_ns),
                                }
                            }
                        }
                    }
                }
                match target.and_then(|ip| self.switches.get_mut(&ip)) {
                    Some(sw) => {
                        self.outcomes.clear();
                        sw.step_batch_staged(group.drain(..), replies, &mut self.outcomes);
                        for outcome in self.outcomes.drain(..) {
                            match outcome {
                                StagedOutcome::FastReply { client, request_id } => {
                                    self.stats.replies += 1;
                                    if let Some(tracer) = &mut self.tracer {
                                        tracer.sink.finish(trace_id(
                                            u32::from_be_bytes(client.0),
                                            request_id,
                                        ));
                                    }
                                }
                                StagedOutcome::Reply(p) => {
                                    self.stats.replies += 1;
                                    if let Some(tracer) = &mut self.tracer {
                                        tracer.sink.finish(trace_id(
                                            u32::from_be_bytes(p.ip.dst.0),
                                            p.netchain.request_id,
                                        ));
                                    }
                                    self.pool.put(p);
                                }
                                StagedOutcome::Action(SwitchAction::Forward(p)) => {
                                    if p.ip.dst == dst && target != Some(dst) {
                                        self.stats.unroutable += 1;
                                        self.pool.put(p);
                                    } else {
                                        self.next_wave.push(p);
                                    }
                                }
                                StagedOutcome::Action(SwitchAction::Drop(DropReason::Blocked)) => {
                                    self.stats.drops += 1;
                                    self.stats.blocked += 1;
                                }
                                StagedOutcome::Action(SwitchAction::Drop(_)) => {
                                    self.stats.drops += 1
                                }
                            }
                        }
                    }
                    None => {
                        self.stats.unroutable += group.len() as u64;
                        for item in group.drain(..) {
                            if let StagedPacket::Owned(p) = item {
                                self.pool.put(p);
                            }
                        }
                    }
                }
            }
        }

        // Chain hops past the first wave continue through the shared wave
        // loop (writes traversing their chains, failover re-routes, …).
        std::mem::swap(&mut self.wave, &mut self.next_wave);
        self.run_waves(replies);
    }

    /// The pre-staging scalar reference path: parses every frame into an
    /// owned packet with the zero-copy [`PacketView`] and runs the wave loop
    /// from the first hop. Kept as the semantic baseline the staged
    /// [`Shard::process_burst`] is differentially tested (and benchmarked)
    /// against.
    ///
    /// Malformed frames are counted and skipped. The owned conversion reuses
    /// pooled packet buffers ([`PacketView::to_owned_into`]), so in steady
    /// state this path does not allocate at all — not even for writes.
    pub fn process_burst_scalar<'a>(
        &mut self,
        frames: impl Iterator<Item = &'a [u8]>,
        replies: &mut BatchEncoder,
    ) {
        debug_assert!(self.wave.is_empty());
        for bytes in frames {
            self.stats.frames_in += 1;
            match PacketView::parse(bytes) {
                Ok(view) => {
                    let pkt = self.pool.take(&view);
                    self.wave.push(pkt);
                }
                Err(_) => self.stats.parse_errors += 1,
            }
        }
        if self.wave.is_empty() {
            return;
        }
        self.stats.bursts += 1;
        self.run_waves(replies);
    }

    /// Runs the in-flight waves (`self.wave`) to completion: group packets
    /// addressed to the same switch and step them as one batch, collecting
    /// each wave's continuing packets into the next.
    fn run_waves(&mut self, replies: &mut BatchEncoder) {
        while !self.wave.is_empty() {
            self.stats.waves += 1;
            let mut wave = std::mem::take(&mut self.wave);
            let mut iter = wave.drain(..).peekable();
            while let Some(pkt) = iter.next() {
                let dst = pkt.ip.dst;
                self.group.push(pkt);
                while iter.peek().is_some_and(|p| p.ip.dst == dst) {
                    self.group
                        .push(iter.next().expect("peek said there is one"));
                }
                let target = if self.failed.contains(&dst) || !self.switches.contains_key(&dst) {
                    // The destination is dead or absent: hand the run to the
                    // gateway switch, whose failover rules decide. No gateway
                    // (everything failed) means the packets are unroutable.
                    self.gateway_ip()
                } else {
                    Some(dst)
                };
                if let (Some(tracer), Some(hop)) = (&mut self.tracer, target) {
                    // One clock read per wave group; evidence is gathered
                    // only for sampled trace IDs.
                    let hop_ip = u32::from_be_bytes(hop.0);
                    let at_ns = tracer.t0.elapsed().as_nanos() as u64;
                    let sw = self.switches.get(&hop);
                    for p in &self.group {
                        let id = trace_id(u32::from_be_bytes(p.ip.src.0), p.netchain.request_id);
                        if !tracer.sink.samples(id) {
                            continue;
                        }
                        match sw.and_then(|sw| query_evidence(sw, &p.netchain)) {
                            Some(ev) => tracer.sink.stamp_with(id, hop_ip, at_ns, ev),
                            None => tracer.sink.stamp(id, hop_ip, at_ns),
                        }
                    }
                }
                match target.and_then(|ip| self.switches.get_mut(&ip)) {
                    Some(sw) => {
                        self.actions.clear();
                        sw.step_batch(self.group.drain(..), &mut self.actions);
                        for action in self.actions.drain(..) {
                            match action {
                                SwitchAction::Forward(p) => {
                                    if p.netchain.op.is_reply() {
                                        self.stats.replies += 1;
                                        if let Some(tracer) = &mut self.tracer {
                                            // Replies carry the client in
                                            // `ip.dst`; close the shard-side
                                            // fragment.
                                            tracer.sink.finish(trace_id(
                                                u32::from_be_bytes(p.ip.dst.0),
                                                p.netchain.request_id,
                                            ));
                                        }
                                        replies.push(&p).expect("replies are bounded like queries");
                                        self.pool.put(p);
                                    } else if p.ip.dst == dst && target != Some(dst) {
                                        // The gateway had no matching rule and
                                        // passed the packet through unchanged:
                                        // it would sail to the dead switch.
                                        self.stats.unroutable += 1;
                                        self.pool.put(p);
                                    } else {
                                        self.next_wave.push(p);
                                    }
                                }
                                SwitchAction::Drop(DropReason::Blocked) => {
                                    self.stats.drops += 1;
                                    self.stats.blocked += 1;
                                }
                                SwitchAction::Drop(_) => self.stats.drops += 1,
                            }
                        }
                    }
                    None => {
                        self.stats.unroutable += self.group.len() as u64;
                        while let Some(p) = self.group.pop() {
                            self.pool.put(p);
                        }
                    }
                }
            }
            drop(iter);
            // Reuse the drained wave allocation for the next round.
            std::mem::swap(&mut wave, &mut self.next_wave);
            self.wave = wave;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_switch::FailoverAction;
    use netchain_wire::{OpCode, QueryStatus};

    fn test_ring() -> HashRing {
        HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7)
    }

    fn query_frame(
        ring: &HashRing,
        key: Key,
        op: OpCode,
        value: Value,
        request_id: u64,
    ) -> Vec<u8> {
        let chain = ring.chain_for_key(&key);
        let pkt = if op == OpCode::Read {
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                chain.tail(),
                op,
                key,
                value,
                netchain_wire::ChainList::new(
                    chain.switches[..chain.len() - 1]
                        .iter()
                        .rev()
                        .copied()
                        .collect::<Vec<_>>(),
                )
                .unwrap(),
                request_id,
            )
        } else {
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                chain.head(),
                op,
                key,
                value,
                netchain_wire::ChainList::new(chain.switches[1..].to_vec()).unwrap(),
                request_id,
            )
        };
        pkt.to_bytes()
    }

    #[test]
    fn write_then_read_through_one_shard() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("shard/key");
        shard.populate(key, &Value::from_u64(0));

        // Separate bursts: within one burst a read overlaps the write's
        // chain traversal (legal for concurrent ops); sequential bursts give
        // the deterministic read-your-write this test asserts.
        let mut replies = BatchEncoder::new();
        let write = query_frame(&ring, key, OpCode::Write, Value::from_u64(42), 1);
        shard.process_burst(std::iter::once(write.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let write_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(write_reply.netchain.op(), OpCode::WriteReply);
        assert_eq!(write_reply.netchain.status(), QueryStatus::Ok);
        assert_eq!(write_reply.netchain.request_id(), 1);

        replies.clear();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 2);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let read_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(read_reply.netchain.op(), OpCode::ReadReply);
        assert_eq!(read_reply.netchain.value(), 42u64.to_be_bytes());
        assert_eq!(client_id_of(read_reply.ip.dst), Some(0));

        // Every chain replica applied the write.
        for ip in ring.chain_for_key(&key).switches {
            let sw = shard.switch(ip).unwrap();
            let slot = sw.kv().lookup(&key).unwrap();
            assert_eq!(sw.kv().read_value(slot).as_u64(), Some(42));
        }
        assert_eq!(shard.stats().replies, 2);
        assert_eq!(shard.stats().drops, 0);
        assert_eq!(shard.stats().unroutable, 0);
        // The write traversed a 3-switch chain: one wave per hop, plus one
        // wave for the read burst.
        assert_eq!(shard.stats().waves, 4);
    }

    #[test]
    fn burst_of_writes_keeps_per_key_order() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("ordered");
        shard.populate(key, &Value::from_u64(0));
        let frames: Vec<Vec<u8>> = (0..32)
            .map(|i| query_frame(&ring, key, OpCode::Write, Value::from_u64(i), i))
            .collect();
        let mut replies = BatchEncoder::new();
        shard.process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
        assert_eq!(replies.len(), 32);
        // Write replies come back in issue order, echoing their own value.
        for (i, frame) in replies.frames().enumerate() {
            let reply = PacketView::parse(frame).unwrap();
            assert_eq!(reply.netchain.op(), OpCode::WriteReply);
            assert_eq!(reply.netchain.request_id(), i as u64);
            assert_eq!(reply.netchain.value(), (i as u64).to_be_bytes());
        }
        // A following read observes the last write of the burst.
        replies.clear();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 99);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        let read_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(read_reply.netchain.value(), 31u64.to_be_bytes());
        // Chain tail holds seq == 32 (one per write).
        let tail = ring.chain_for_key(&key).tail();
        let sw = shard.switch(tail).unwrap();
        let slot = sw.kv().lookup(&key).unwrap();
        assert_eq!(sw.kv().seq(slot), 32);
    }

    /// Swaps the UDP ports of a query frame off the NetChain port, keeping
    /// every other field (including the IP checksum) intact.
    fn off_port(mut frame: Vec<u8>) -> Vec<u8> {
        frame[34..36].copy_from_slice(&1234u16.to_be_bytes());
        frame[36..38].copy_from_slice(&53u16.to_be_bytes());
        frame
    }

    #[test]
    fn staged_burst_matches_scalar_reference() {
        let ring = test_ring();
        let mut staged = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let mut scalar = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let keys: Vec<Key> = (0..6u64).map(Key::from_u64).collect();
        for k in &keys {
            staged.populate(*k, &Value::from_u64(7));
            scalar.populate(*k, &Value::from_u64(7));
        }
        let missing = Key::from_name("not/populated");
        // A mix crossing one chunk boundary: fast-lane reads (hits and index
        // misses), chain writes, in-band stat probes, malformed frames, and a
        // valid frame on a non-NetChain port.
        let frames: Vec<Vec<u8>> = (0..48u64)
            .map(|i| match i % 6 {
                0 => query_frame(
                    &ring,
                    keys[(i % 6) as usize],
                    OpCode::Read,
                    Value::empty(),
                    i,
                ),
                1 => query_frame(
                    &ring,
                    keys[(i % 6) as usize],
                    OpCode::Write,
                    Value::from_u64(100 + i),
                    i,
                ),
                2 => query_frame(&ring, missing, OpCode::Read, Value::empty(), i),
                3 => {
                    let mut f = query_frame(&ring, keys[0], OpCode::Read, Value::empty(), i);
                    f[24] ^= 0xff; // corrupt the IP checksum
                    f
                }
                4 => off_port(query_frame(&ring, keys[1], OpCode::Read, Value::empty(), i)),
                _ => {
                    let mut f = query_frame(
                        &ring,
                        keys[(i % 6) as usize],
                        OpCode::Read,
                        Value::empty(),
                        i,
                    );
                    f[42] = OpCode::Stat.to_u8(); // in-band probe
                    f
                }
            })
            .collect();
        let mut staged_replies = BatchEncoder::new();
        let mut scalar_replies = BatchEncoder::new();
        staged.process_burst(frames.iter().map(|f| f.as_slice()), &mut staged_replies);
        scalar.process_burst_scalar(frames.iter().map(|f| f.as_slice()), &mut scalar_replies);
        assert_eq!(staged.stats(), scalar.stats());
        assert_eq!(staged_replies.len(), scalar_replies.len());
        for (i, (a, b)) in staged_replies
            .frames()
            .zip(scalar_replies.frames())
            .enumerate()
        {
            assert_eq!(a, b, "reply frame {i} diverges from the scalar bytes");
        }
        for ip in ring.switches() {
            assert_eq!(
                staged.switch(*ip).unwrap().stats(),
                scalar.switch(*ip).unwrap().stats(),
                "switch {ip:?} stats diverge"
            );
        }
    }

    #[test]
    fn staged_mixed_burst_drops_garbage_keeps_write_order() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("ordered/garbage");
        shard.populate(key, &Value::from_u64(0));
        // Interleave 32 writes to one key with malformed frames of assorted
        // shapes; the staged path must drop exactly the garbage and apply the
        // writes in issue order.
        let mut frames: Vec<Vec<u8>> = Vec::new();
        let mut garbage = 0u64;
        for i in 0..32u64 {
            frames.push(query_frame(
                &ring,
                key,
                OpCode::Write,
                Value::from_u64(i),
                i,
            ));
            match i % 3 {
                0 => {
                    frames.push(vec![0u8; 40]); // truncated
                    garbage += 1;
                }
                1 => {
                    let mut f = query_frame(&ring, key, OpCode::Read, Value::empty(), 1000 + i);
                    f[42] = 0x99; // invalid opcode byte
                    frames.push(f);
                    garbage += 1;
                }
                _ => {}
            }
        }
        let mut replies = BatchEncoder::new();
        shard.process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
        assert_eq!(shard.stats().parse_errors, garbage);
        assert_eq!(shard.stats().frames_in, frames.len() as u64);
        assert_eq!(replies.len(), 32);
        for (i, frame) in replies.frames().enumerate() {
            let reply = PacketView::parse(frame).unwrap();
            assert_eq!(reply.netchain.op(), OpCode::WriteReply);
            assert_eq!(reply.netchain.request_id(), i as u64);
            assert_eq!(reply.netchain.value(), (i as u64).to_be_bytes());
        }
        // A following fast-lane read observes the last write.
        replies.clear();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 99);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        let read_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(read_reply.netchain.value(), 31u64.to_be_bytes());
    }

    #[test]
    fn stat_probe_is_answered_in_burst_with_published_gauges() {
        use netchain_switch::ProbeGauges;
        use netchain_wire::StatSnapshot;
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("probed");
        shard.populate(key, &Value::from_u64(1));
        shard.set_probe_gauges(ProbeGauges {
            queue_depth: 5,
            queue_cap: 512,
            lat_buckets: [0, 1, 2, 3, 4, 5, 6, 7],
        });
        let mut probe = query_frame(&ring, key, OpCode::Read, Value::empty(), 7);
        probe[42] = OpCode::Stat.to_u8();
        let mut replies = BatchEncoder::new();
        shard.process_burst(std::iter::once(probe.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(reply.netchain.op(), OpCode::StatReply);
        assert_eq!(reply.netchain.status(), QueryStatus::Ok);
        let snap = StatSnapshot::decode(reply.netchain.value()).unwrap();
        assert_eq!(snap.queue_depth, 5);
        assert_eq!(snap.queue_cap, 512);
        assert_eq!(snap.lat_buckets[3], 3);
        assert_eq!(snap.packets_seen, 1);
        assert_eq!(snap.store_size, 1);
        assert_eq!(shard.stats().replies, 1);
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring, PipelineConfig::tiny(16));
        let mut replies = BatchEncoder::new();
        let garbage = [0u8; 40];
        shard.process_burst(std::iter::once(&garbage[..]), &mut replies);
        assert_eq!(shard.stats().parse_errors, 1);
        assert!(replies.is_empty());
    }

    #[test]
    fn ownership_partitions_groups() {
        let ring = test_ring();
        let shards: Vec<Shard> = (0..3)
            .map(|i| Shard::new(i, 3, ring.clone(), PipelineConfig::tiny(16)))
            .collect();
        for k in 0..200u64 {
            let key = Key::from_u64(k);
            let owners = shards.iter().filter(|s| s.owns(&key)).count();
            assert_eq!(owners, 1, "key {k} must have exactly one owner");
        }
    }

    #[test]
    fn killed_switch_without_rules_drops_unroutable() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("doomed");
        shard.populate(key, &Value::from_u64(0));
        let head = ring.chain_for_key(&key).head();
        shard.kill_switch(head);
        assert!(shard.is_failed(head));
        let mut replies = BatchEncoder::new();
        let write = query_frame(&ring, key, OpCode::Write, Value::from_u64(1), 1);
        shard.process_burst(std::iter::once(write.as_slice()), &mut replies);
        assert!(replies.is_empty());
        assert_eq!(shard.stats().unroutable, 1);
    }

    #[test]
    fn failover_rule_routes_around_killed_switch() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("survivor");
        shard.populate(key, &Value::from_u64(0));
        let chain = ring.chain_for_key(&key);
        // Kill the middle replica and install fast failover everywhere.
        let victim = chain.switches[1];
        shard.kill_switch(victim);
        shard.install_rule(
            victim,
            FailoverRule {
                priority: 1,
                scope: RuleScope::All,
                action: FailoverAction::ChainFailover,
            },
        );
        let mut replies = BatchEncoder::new();
        let write = query_frame(&ring, key, OpCode::Write, Value::from_u64(7), 1);
        shard.process_burst(std::iter::once(write.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1, "write must complete around the failure");
        let reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(reply.netchain.status(), QueryStatus::Ok);
        // The surviving replicas applied it; the dead one is frozen.
        for &ip in &chain.switches {
            let sw = shard.switch(ip).unwrap();
            let slot = sw.kv().lookup(&key).unwrap();
            let expected = if ip == victim { 0 } else { 7 };
            assert_eq!(sw.kv().read_value(slot).as_u64(), Some(expected));
        }
        // A read served by the tail still works (tail is alive).
        replies.clear();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 2);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        let read_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(read_reply.netchain.value(), 7u64.to_be_bytes());
        assert_eq!(shard.stats().unroutable, 0);
    }

    #[test]
    fn block_rule_drops_and_counts_blocked() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("blocked/key");
        shard.populate(key, &Value::from_u64(0));
        let head = ring.chain_for_key(&key).head();
        shard.kill_switch(head);
        shard.install_rule(
            head,
            FailoverRule {
                priority: 2,
                scope: RuleScope::All,
                action: FailoverAction::Block,
            },
        );
        let mut replies = BatchEncoder::new();
        let write = query_frame(&ring, key, OpCode::Write, Value::from_u64(3), 1);
        shard.process_burst(std::iter::once(write.as_slice()), &mut replies);
        assert!(replies.is_empty());
        assert_eq!(shard.stats().blocked, 1);
        // Removing the block and falling back to failover unblocks.
        shard.remove_rule(head, 2, RuleScope::All);
        shard.install_rule(
            head,
            FailoverRule {
                priority: 1,
                scope: RuleScope::All,
                action: FailoverAction::ChainFailover,
            },
        );
        let retry = query_frame(&ring, key, OpCode::Write, Value::from_u64(3), 2);
        shard.process_burst(std::iter::once(retry.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
    }

    #[test]
    fn spare_receives_redirected_traffic_after_import() {
        let ring = test_ring();
        let spare = Ipv4Addr::for_switch(9);
        let mut shard = Shard::with_spares(0, 1, ring.clone(), PipelineConfig::tiny(64), &[spare]);
        let key = Key::from_name("migrated");
        shard.populate(key, &Value::from_u64(5));
        let chain = ring.chain_for_key(&key);
        let tail = chain.tail();
        let donor = chain.predecessor(tail).expect("chains of 3");
        shard.kill_switch(tail);
        // Repair: copy the group's state from the donor onto the spare, then
        // redirect the dead tail's traffic to it.
        let modulus = ring.num_virtual_nodes() as u32;
        let group = ring.group_of(&key);
        let entries = shard.export_group(donor, group, modulus);
        assert!(entries.iter().any(|e| e.key == key));
        shard.import_entries(spare, &entries);
        shard.set_session(spare, 9);
        shard.install_rule(
            tail,
            FailoverRule {
                priority: 3,
                scope: RuleScope::Group { group, modulus },
                action: FailoverAction::Redirect(spare),
            },
        );
        let mut replies = BatchEncoder::new();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 1);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(reply.netchain.status(), QueryStatus::Ok);
        assert_eq!(reply.netchain.value(), 5u64.to_be_bytes());
        // The spare, not the dead tail, answered.
        assert!(shard.switch(spare).unwrap().stats().reads > 0);
    }
}
