//! A worker shard: the per-core unit of the fabric.
//!
//! The fabric partitions the keyspace by virtual group — the same unit the
//! paper's consistent hashing and failure recovery use (§4.1, §5.2) — and
//! steers every query to the shard owning its key's group. A shard therefore
//! sees *all* hops of every chain it is responsible for, and runs the chain
//! to completion locally: head, replicas and tail are the very same
//! [`NetChainSwitch`] program instances the discrete-event simulator hosts,
//! executed back to back instead of separated by simulated links. Because
//! per-key state is touched by exactly one shard, shards share nothing and
//! scale linearly with cores.
//!
//! Processing is batched in two layers: the shard pulls bursts of frames
//! from its ingress rings, and inside a burst the chain traversal runs in
//! *waves* — all packets currently addressed to the same switch are handed
//! to [`NetChainSwitch::step_batch`] together, keeping that switch's tables
//! hot while the burst flows through the chain stage by stage, like a
//! hardware pipeline.

use crate::stats::ShardStats;
use netchain_core::HashRing;
use netchain_switch::{NetChainSwitch, PipelineConfig, SwitchAction};
use netchain_wire::{BatchEncoder, Ipv4Addr, Key, NetChainPacket, PacketView, Value};
use std::collections::HashMap;

/// The steering rule, in one place: `key`'s virtual group modulo the shard
/// count. Everything that partitions by key — shard ownership, client
/// steering, control-plane population — must route through this function so
/// the three can never drift apart.
pub fn shard_of_key(ring: &HashRing, key: &Key, num_shards: usize) -> usize {
    ring.group_of(key) as usize % num_shards
}

/// Identifies the client a reply frame belongs to, from the destination IP
/// (`Ipv4Addr::for_host(id)` addressing: `10.1.hi.lo`).
pub fn client_id_of(ip: Ipv4Addr) -> Option<u32> {
    if ip.0[0] == 10 && ip.0[1] == 1 {
        Some(u32::from(ip.0[2]) << 8 | u32::from(ip.0[3]))
    } else {
        None
    }
}

/// One keyspace shard hosting shard-local replicas of every ring switch.
pub struct Shard {
    id: usize,
    num_shards: usize,
    ring: HashRing,
    switches: HashMap<Ipv4Addr, NetChainSwitch>,
    stats: ShardStats,
    /// Scratch: the current wave of in-flight packets (reused across bursts).
    wave: Vec<NetChainPacket>,
    next_wave: Vec<NetChainPacket>,
    group: Vec<NetChainPacket>,
    actions: Vec<SwitchAction>,
}

impl Shard {
    /// Creates shard `id` of `num_shards` over the given ring, with one
    /// switch instance per ring member.
    pub fn new(id: usize, num_shards: usize, ring: HashRing, pipeline: PipelineConfig) -> Self {
        assert!(num_shards > 0 && id < num_shards);
        let switches = ring
            .switches()
            .iter()
            .map(|&ip| (ip, NetChainSwitch::new(ip, pipeline)))
            .collect();
        Shard {
            id,
            num_shards,
            ring,
            switches,
            stats: ShardStats::default(),
            wave: Vec::new(),
            next_wave: Vec::new(),
            group: Vec::new(),
            actions: Vec::new(),
        }
    }

    /// This shard's index.
    pub fn id(&self) -> usize {
        self.id
    }

    /// True if this shard owns `key`'s virtual group.
    pub fn owns(&self, key: &Key) -> bool {
        shard_of_key(&self.ring, key, self.num_shards) == self.id
    }

    /// Statistics accumulated so far.
    pub fn stats(&self) -> &ShardStats {
        &self.stats
    }

    /// Inserts `key` on every switch of its chain (control-plane population,
    /// the fabric equivalent of `NetChainCluster::populate_key`). Only keys
    /// this shard [`owns`](Self::owns) may be inserted.
    pub fn populate(&mut self, key: Key, value: &Value) {
        assert!(self.owns(&key), "key steered to the wrong shard");
        for ip in self.ring.chain_for_key(&key).switches {
            self.switches
                .get_mut(&ip)
                .expect("chain switches exist in the shard")
                .kv_mut()
                .insert(key, value)
                .expect("shard store sized for the workload");
        }
    }

    /// Read access to a switch replica (differential tests, experiments).
    pub fn switch(&self, ip: Ipv4Addr) -> Option<&NetChainSwitch> {
        self.switches.get(&ip)
    }

    /// The switch IPs this shard hosts.
    pub fn switch_ips(&self) -> impl Iterator<Item = Ipv4Addr> + '_ {
        self.switches.keys().copied()
    }

    /// Processes one burst of ingress frames to completion, encoding every
    /// generated reply into `replies` (in completion order).
    ///
    /// Each frame is parsed with the zero-copy [`PacketView`]; malformed
    /// frames are counted and skipped. The owned conversion that follows is
    /// the only per-packet allocation on this path, and for reads (empty
    /// value, empty chain) it allocates nothing.
    pub fn process_burst<'a>(
        &mut self,
        frames: impl Iterator<Item = &'a [u8]>,
        replies: &mut BatchEncoder,
    ) {
        debug_assert!(self.wave.is_empty());
        for bytes in frames {
            self.stats.frames_in += 1;
            match PacketView::parse(bytes) {
                Ok(view) => self.wave.push(view.to_owned()),
                Err(_) => self.stats.parse_errors += 1,
            }
        }
        if self.wave.is_empty() {
            return;
        }
        self.stats.bursts += 1;

        // Run the burst to completion in waves: group packets addressed to
        // the same switch and step them as one batch.
        while !self.wave.is_empty() {
            self.stats.waves += 1;
            let mut wave = std::mem::take(&mut self.wave);
            let mut iter = wave.drain(..).peekable();
            while let Some(pkt) = iter.next() {
                let dst = pkt.ip.dst;
                self.group.push(pkt);
                while iter.peek().is_some_and(|p| p.ip.dst == dst) {
                    self.group
                        .push(iter.next().expect("peek said there is one"));
                }
                match self.switches.get_mut(&dst) {
                    Some(sw) => {
                        self.actions.clear();
                        sw.step_batch(self.group.drain(..), &mut self.actions);
                        for action in self.actions.drain(..) {
                            match action {
                                SwitchAction::Forward(p) => {
                                    if p.netchain.op.is_reply() {
                                        self.stats.replies += 1;
                                        replies.push(&p).expect("replies are bounded like queries");
                                    } else {
                                        self.next_wave.push(p);
                                    }
                                }
                                SwitchAction::Drop(_) => self.stats.drops += 1,
                            }
                        }
                    }
                    None => {
                        // Addressed to an IP this shard does not host (only
                        // possible with failover rules, which the fabric
                        // does not install yet).
                        self.stats.unroutable += self.group.len() as u64;
                        self.group.clear();
                    }
                }
            }
            drop(iter);
            // Reuse the drained wave allocation for the next round.
            std::mem::swap(&mut wave, &mut self.next_wave);
            self.wave = wave;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_wire::{OpCode, QueryStatus};

    fn test_ring() -> HashRing {
        HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7)
    }

    fn query_frame(
        ring: &HashRing,
        key: Key,
        op: OpCode,
        value: Value,
        request_id: u64,
    ) -> Vec<u8> {
        let chain = ring.chain_for_key(&key);
        let pkt = if op == OpCode::Read {
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                chain.tail(),
                op,
                key,
                value,
                netchain_wire::ChainList::empty(),
                request_id,
            )
        } else {
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                chain.head(),
                op,
                key,
                value,
                netchain_wire::ChainList::new(chain.switches[1..].to_vec()).unwrap(),
                request_id,
            )
        };
        pkt.to_bytes()
    }

    #[test]
    fn write_then_read_through_one_shard() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("shard/key");
        shard.populate(key, &Value::from_u64(0));

        // Separate bursts: within one burst a read overlaps the write's
        // chain traversal (legal for concurrent ops); sequential bursts give
        // the deterministic read-your-write this test asserts.
        let mut replies = BatchEncoder::new();
        let write = query_frame(&ring, key, OpCode::Write, Value::from_u64(42), 1);
        shard.process_burst(std::iter::once(write.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let write_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(write_reply.netchain.op(), OpCode::WriteReply);
        assert_eq!(write_reply.netchain.status(), QueryStatus::Ok);
        assert_eq!(write_reply.netchain.request_id(), 1);

        replies.clear();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 2);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let read_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(read_reply.netchain.op(), OpCode::ReadReply);
        assert_eq!(read_reply.netchain.value(), 42u64.to_be_bytes());
        assert_eq!(client_id_of(read_reply.ip.dst), Some(0));

        // Every chain replica applied the write.
        for ip in ring.chain_for_key(&key).switches {
            let sw = shard.switch(ip).unwrap();
            let slot = sw.kv().lookup(&key).unwrap();
            assert_eq!(sw.kv().read_value(slot).as_u64(), Some(42));
        }
        assert_eq!(shard.stats().replies, 2);
        assert_eq!(shard.stats().drops, 0);
        assert_eq!(shard.stats().unroutable, 0);
        // The write traversed a 3-switch chain: one wave per hop, plus one
        // wave for the read burst.
        assert_eq!(shard.stats().waves, 4);
    }

    #[test]
    fn burst_of_writes_keeps_per_key_order() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring.clone(), PipelineConfig::tiny(64));
        let key = Key::from_name("ordered");
        shard.populate(key, &Value::from_u64(0));
        let frames: Vec<Vec<u8>> = (0..32)
            .map(|i| query_frame(&ring, key, OpCode::Write, Value::from_u64(i), i))
            .collect();
        let mut replies = BatchEncoder::new();
        shard.process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
        assert_eq!(replies.len(), 32);
        // Write replies come back in issue order, echoing their own value.
        for (i, frame) in replies.frames().enumerate() {
            let reply = PacketView::parse(frame).unwrap();
            assert_eq!(reply.netchain.op(), OpCode::WriteReply);
            assert_eq!(reply.netchain.request_id(), i as u64);
            assert_eq!(reply.netchain.value(), (i as u64).to_be_bytes());
        }
        // A following read observes the last write of the burst.
        replies.clear();
        let read = query_frame(&ring, key, OpCode::Read, Value::empty(), 99);
        shard.process_burst(std::iter::once(read.as_slice()), &mut replies);
        let read_reply = PacketView::parse(replies.frame(0)).unwrap();
        assert_eq!(read_reply.netchain.value(), 31u64.to_be_bytes());
        // Chain tail holds seq == 32 (one per write).
        let tail = ring.chain_for_key(&key).tail();
        let sw = shard.switch(tail).unwrap();
        let slot = sw.kv().lookup(&key).unwrap();
        assert_eq!(sw.kv().seq(slot), 32);
    }

    #[test]
    fn malformed_frames_are_counted_not_fatal() {
        let ring = test_ring();
        let mut shard = Shard::new(0, 1, ring, PipelineConfig::tiny(16));
        let mut replies = BatchEncoder::new();
        let garbage = [0u8; 40];
        shard.process_burst(std::iter::once(&garbage[..]), &mut replies);
        assert_eq!(shard.stats().parse_errors, 1);
        assert!(replies.is_empty());
    }

    #[test]
    fn ownership_partitions_groups() {
        let ring = test_ring();
        let shards: Vec<Shard> = (0..3)
            .map(|i| Shard::new(i, 3, ring.clone(), PipelineConfig::tiny(16)))
            .collect();
        for k in 0..200u64 {
            let key = Key::from_u64(k);
            let owners = shards.iter().filter(|s| s.owns(&key)).count();
            assert_eq!(owners, 1, "key {k} must have exactly one owner");
        }
    }
}
