//! Differential test: the fabric and the discrete-event simulator run the
//! *same* switch program (`netchain_switch::NetChainSwitch`), so the same
//! scripted op sequence must produce identical reply statuses/values and
//! identical per-switch KV state in both. This pins the fabric's semantics to
//! the simulator's: any divergence — in chain routing, per-op behaviour, or
//! stored sequence numbers — fails the test.

use netchain_core::{AgentCore, ClusterConfig, KvOp, NetChainCluster};
use netchain_fabric::{shard_of_key, Shard};
use netchain_sim::{SimDuration, SimTime};
use netchain_switch::{ExportedEntry, PipelineConfig};
use netchain_wire::{BatchEncoder, Ipv4Addr, Key, PacketView, Value};

/// The scripted sequence both executions run: writes, reads (hits and
/// misses), contended CAS (success then failure), deletes, and a
/// read-after-delete, spread over enough keys to cross several chains.
fn script() -> Vec<KvOp> {
    let keys: Vec<Key> = (0..8)
        .map(|i| Key::from_name(&format!("diff/key{i}")))
        .collect();
    let lock = Key::from_name("diff/lock");
    let ghost = Key::from_name("diff/never-populated");
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        ops.push(KvOp::Write(k, Value::from_u64(100 + i as u64)));
    }
    for &k in &keys {
        ops.push(KvOp::Read(k));
    }
    // Overwrites, then re-reads.
    for (i, &k) in keys.iter().enumerate().take(4) {
        ops.push(KvOp::Write(k, Value::from_u64(200 + i as u64)));
        ops.push(KvOp::Read(k));
    }
    // CAS: first one wins, second sees the changed value and fails.
    ops.push(KvOp::Cas {
        key: lock,
        expected: 0,
        new: 11,
    });
    ops.push(KvOp::Cas {
        key: lock,
        expected: 0,
        new: 22,
    });
    ops.push(KvOp::Cas {
        key: lock,
        expected: 11,
        new: 33,
    });
    ops.push(KvOp::Read(lock));
    // Miss: a key nobody populated.
    ops.push(KvOp::Read(ghost));
    // Delete, then observe the tombstone.
    ops.push(KvOp::Delete(keys[7]));
    ops.push(KvOp::Read(keys[7]));
    ops
}

/// Keys the control plane pre-populates (everything the script touches except
/// the deliberate miss).
fn populated_keys() -> Vec<Key> {
    let mut keys: Vec<Key> = (0..8)
        .map(|i| Key::from_name(&format!("diff/key{i}")))
        .collect();
    keys.push(Key::from_name("diff/lock"));
    keys
}

/// Sorted, comparable snapshot of one switch's live KV state.
fn kv_snapshot(entries: impl IntoIterator<Item = ExportedEntry>) -> Vec<ExportedEntry> {
    let mut v: Vec<ExportedEntry> = entries.into_iter().collect();
    v.sort_by_key(|a| a.key);
    v
}

#[test]
fn fabric_matches_simulator_on_scripted_ops() {
    // Both executions share geometry: the testbed ring (4 switches) and a
    // small identical pipeline, so slot-level state is comparable.
    let pipeline = PipelineConfig::tiny(256);
    let config = ClusterConfig {
        pipeline,
        ..ClusterConfig::default()
    };

    // ---- Simulator execution ----
    let mut cluster = NetChainCluster::testbed(config);
    for key in populated_keys() {
        cluster.populate_key(key, &Value::from_u64(0));
    }
    cluster.install_scripted_client(0, script());
    cluster.sim.run_for(SimDuration::from_millis(500));
    let sim_client = cluster.scripted_client(0).expect("host 0 has the script");
    assert!(sim_client.is_done(), "simulated script did not finish");
    assert_eq!(sim_client.agent_stats().version_regressions, 0);
    let sim_results = sim_client.results();

    // ---- Fabric execution ----
    // Two shards (exactly the multi-core partitioning) over the *same* ring;
    // each op is steered to the shard owning the key's virtual group.
    let ring = cluster.ring().clone();
    let num_shards = 2;
    let mut shards: Vec<Shard> = (0..num_shards)
        .map(|i| Shard::new(i, num_shards, ring.clone(), pipeline))
        .collect();
    let shard_of = |key: &Key| shard_of_key(&ring, key, num_shards);
    for key in populated_keys() {
        shards[shard_of(&key)].populate(key, &Value::from_u64(0));
    }

    // Same client logic: an AgentCore configured exactly like the simulated
    // host 0, driven closed-loop one op at a time (a scripted client is
    // sequential by definition).
    let mut agent = AgentCore::new(cluster.agent_config(0), cluster.directory());
    let mut replies = BatchEncoder::new();
    let mut clock = 0u64;
    let mut fabric_results = Vec::new();
    for op in script() {
        clock += 1;
        let key = match &op {
            KvOp::Read(k) | KvOp::Write(k, _) | KvOp::Delete(k) => *k,
            KvOp::Cas { key, .. } => *key,
        };
        let (_, pkt) = agent.begin(SimTime(clock), op);
        let frame = pkt.to_bytes();
        replies.clear();
        shards[shard_of(&key)].process_burst(std::iter::once(frame.as_slice()), &mut replies);
        assert_eq!(
            replies.len(),
            1,
            "each scripted op yields exactly one reply"
        );
        let reply = PacketView::parse(replies.frame(0))
            .expect("fabric replies parse")
            .to_owned();
        clock += 1;
        let done = agent
            .on_reply(SimTime(clock), &reply)
            .expect("reply matches the outstanding op");
        fabric_results.push(done);
    }
    assert_eq!(agent.stats().version_regressions, 0);

    // ---- Reply-level comparison ----
    assert_eq!(sim_results.len(), fabric_results.len());
    for (i, (sim, fab)) in sim_results.iter().zip(&fabric_results).enumerate() {
        assert_eq!(sim.op, fab.op, "op {i}: scripts diverged");
        assert_eq!(sim.request_id, fab.request_id, "op {i}: request id");
        assert_eq!(sim.status, fab.status, "op {i} ({:?}): status", sim.op);
        assert_eq!(sim.value, fab.value, "op {i} ({:?}): value", sim.op);
        assert_eq!(sim.seq, fab.seq, "op {i} ({:?}): version", sim.op);
    }

    // ---- KV-state comparison ----
    // A fabric switch's state is the union over shards (shards partition the
    // keyspace, so the union is disjoint); it must equal the simulated
    // switch's state entry for entry — including tombstones, since neither
    // side garbage-collects without a controller telling it to.
    let switch_ips: Vec<Ipv4Addr> = ring.switches().to_vec();
    for (idx, &ip) in switch_ips.iter().enumerate() {
        assert_eq!(ip, Ipv4Addr::for_switch(idx as u32));
        let sim_state = kv_snapshot(cluster.switch(idx).switch().kv().export_entries());
        let fabric_state = kv_snapshot(shards.iter().flat_map(|s| {
            s.switch(ip)
                .expect("every shard hosts every ring switch")
                .kv()
                .export_entries()
        }));
        assert_eq!(
            sim_state, fabric_state,
            "switch {idx} diverged between simulator and fabric"
        );
    }
}
