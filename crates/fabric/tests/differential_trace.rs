//! Differential trace test: the in-band per-hop traces recorded by the
//! discrete-event simulator's switches and by the fabric's shards must agree
//! on the *chain hop order* of every query. Both sides derive the trace ID
//! from fields every packet already carries (client IP + request id) and
//! stamp the switch that handles the packet at each hop, so the same
//! scripted op sequence must yield identical per-query hop paths — reads hit
//! the tail alone, writes walk head → replicas → tail — even though one side
//! stamps virtual time and the other wall-clock time.

use netchain_core::{AgentCore, ClusterConfig, KvOp, NetChainCluster};
use netchain_fabric::{shard_of_key, Shard};
use netchain_sim::{SimDuration, SimTime};
use netchain_switch::PipelineConfig;
use netchain_telemetry::{merge_traces, trace_id, PacketTrace, TraceConfig};
use netchain_wire::{BatchEncoder, Ipv4Addr, Key, PacketView, Value};
use std::collections::HashMap;
use std::time::Instant;

/// Trace everything: shift 0 samples every query.
const TRACE_ALL: TraceConfig = TraceConfig {
    enabled: true,
    sample_shift: 0,
    max_traces: 4096,
};

/// The scripted sequence both executions run (a subset of the differential
/// semantics test's script): writes and reads over enough keys to cross
/// several distinct chains, plus a miss and a delete.
fn script() -> Vec<KvOp> {
    let keys: Vec<Key> = (0..8)
        .map(|i| Key::from_name(&format!("trace/key{i}")))
        .collect();
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        ops.push(KvOp::Write(k, Value::from_u64(500 + i as u64)));
    }
    for &k in &keys {
        ops.push(KvOp::Read(k));
    }
    ops.push(KvOp::Read(Key::from_name("trace/never-populated")));
    ops.push(KvOp::Delete(keys[0]));
    ops
}

fn populated_keys() -> Vec<Key> {
    (0..8)
        .map(|i| Key::from_name(&format!("trace/key{i}")))
        .collect()
}

/// Hop-IP sequence per trace ID, with client hops (10.1.x.x) filtered out so
/// paths are comparable whether or not a client-side stamper participated.
fn switch_paths(traces: &[PacketTrace]) -> HashMap<u64, Vec<u32>> {
    let client_prefix = |ip: u32| ip >> 16 == (10 << 8) | 1;
    traces
        .iter()
        .map(|t| {
            (
                t.id,
                t.hops
                    .iter()
                    .map(|h| h.hop_ip)
                    .filter(|&ip| !client_prefix(ip))
                    .collect(),
            )
        })
        .collect()
}

#[test]
fn sim_and_fabric_traces_agree_on_chain_hop_order() {
    let pipeline = PipelineConfig::tiny(256);
    let config = ClusterConfig {
        pipeline,
        ..ClusterConfig::default()
    };

    // ---- Simulator execution, tracing every query ----
    let mut cluster = NetChainCluster::testbed(config);
    let sink = cluster.enable_switch_tracing(TRACE_ALL);
    for key in populated_keys() {
        cluster.populate_key(key, &Value::from_u64(0));
    }
    cluster.install_scripted_client(0, script());
    cluster.sim.run_for(SimDuration::from_millis(500));
    assert!(
        cluster.scripted_client(0).expect("host 0").is_done(),
        "simulated script did not finish"
    );
    let sim_traces = merge_traces(sink.borrow_mut().drain());
    let sim_paths = switch_paths(&sim_traces);

    // ---- Fabric execution, same ring, same agent, tracing on ----
    let ring = cluster.ring().clone();
    let num_shards = 2;
    let t0 = Instant::now();
    let mut shards: Vec<Shard> = (0..num_shards)
        .map(|i| {
            let mut s = Shard::new(i, num_shards, ring.clone(), pipeline);
            s.enable_tracing(TRACE_ALL, t0);
            s
        })
        .collect();
    let shard_of = |key: &Key| shard_of_key(&ring, key, num_shards);
    for key in populated_keys() {
        shards[shard_of(&key)].populate(key, &Value::from_u64(0));
    }
    let mut agent = AgentCore::new(cluster.agent_config(0), cluster.directory());
    let mut replies = BatchEncoder::new();
    let mut clock = 0u64;
    for op in script() {
        clock += 1;
        let key = match &op {
            KvOp::Read(k) | KvOp::Write(k, _) | KvOp::Delete(k) => *k,
            KvOp::Cas { key, .. } => *key,
        };
        let (_, pkt) = agent.begin(SimTime(clock), op);
        let frame = pkt.to_bytes();
        replies.clear();
        shards[shard_of(&key)].process_burst(std::iter::once(frame.as_slice()), &mut replies);
        assert_eq!(replies.len(), 1);
        let reply = PacketView::parse(replies.frame(0)).unwrap().to_owned();
        clock += 1;
        agent
            .on_reply(SimTime(clock), &reply)
            .expect("reply matches the outstanding op");
    }
    let fabric_traces = merge_traces(shards.iter_mut().flat_map(|s| s.take_traces()));
    let fabric_paths = switch_paths(&fabric_traces);

    // ---- Comparison ----
    // Both sides sampled every one of the script's queries, with identical
    // trace IDs (client IP + request id, both starting at request id 1).
    let ops = script().len();
    assert_eq!(sim_paths.len(), ops, "sim must trace every scripted op");
    assert_eq!(
        fabric_paths.len(),
        ops,
        "fabric must trace every scripted op"
    );
    let client_ip = u32::from_be_bytes(Ipv4Addr::for_host(0).0);
    for request_id in 1..=ops as u64 {
        let id = trace_id(client_ip, request_id);
        let sim = sim_paths
            .get(&id)
            .unwrap_or_else(|| panic!("sim lacks a trace for request {request_id}"));
        let fabric = fabric_paths
            .get(&id)
            .unwrap_or_else(|| panic!("fabric lacks a trace for request {request_id}"));
        assert_eq!(
            sim, fabric,
            "request {request_id}: hop order diverged between simulator and fabric"
        );
        assert!(!sim.is_empty(), "request {request_id}: empty hop path");
    }
    // The script contains writes, which must walk full chains (f+1 = 3
    // hops), and reads, which the tail serves alone.
    assert!(
        sim_paths.values().any(|p| p.len() >= 3),
        "no full-chain write path was traced"
    );
    assert!(
        sim_paths.values().any(|p| p.len() == 1),
        "no tail-only read path was traced"
    );
}
