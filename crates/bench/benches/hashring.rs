//! Consistent-hash ring lookups: the per-query cost a client agent pays to
//! find a chain.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netchain_core::{ChainDirectory, HashRing};
use netchain_wire::{Ipv4Addr, Key};

fn bench_ring(c: &mut Criterion) {
    let switches: Vec<Ipv4Addr> = (0..100).map(Ipv4Addr::for_switch).collect();
    let ring = HashRing::new(switches, 100, 3, 7);
    let directory = ChainDirectory::new(ring.clone());
    let key = Key::from_name("some-configuration-key");
    c.bench_function("hashring/chain_for_key_100_switches", |b| {
        b.iter(|| ring.chain_for_key(black_box(&key)))
    });
    c.bench_function("hashring/write_route", |b| {
        b.iter(|| directory.write_route(black_box(&key)))
    });
    c.bench_function("hashring/read_route", |b| {
        b.iter(|| directory.read_route(black_box(&key)))
    });
}

criterion_group!(benches, bench_ring);
criterion_main!(benches);
