//! Per-packet cost of the NetChain switch program: reads, head writes,
//! replica writes and CAS, on a store of realistic size.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netchain_switch::{NetChainSwitch, PipelineConfig};
use netchain_wire::{ChainList, Ipv4Addr, Key, NetChainPacket, OpCode, Value};

fn loaded_switch() -> NetChainSwitch {
    let mut sw = NetChainSwitch::new(Ipv4Addr::for_switch(0), PipelineConfig::tofino_prototype());
    for i in 0..10_000u64 {
        sw.kv_mut()
            .insert(Key::from_u64(i), &Value::from_u64(i))
            .unwrap();
    }
    sw
}

fn query(op: OpCode, seq: u64) -> NetChainPacket {
    let mut pkt = NetChainPacket::query(
        Ipv4Addr::for_host(0),
        40000,
        Ipv4Addr::for_switch(0),
        op,
        Key::from_u64(42),
        Value::filled(0xab, 64).unwrap(),
        ChainList::new(vec![Ipv4Addr::for_switch(1)]).unwrap(),
        1,
    );
    pkt.netchain.seq = seq;
    pkt
}

fn bench_switch(c: &mut Criterion) {
    let mut sw = loaded_switch();
    let read = query(OpCode::Read, 0);
    c.bench_function("switch/read", |b| {
        b.iter(|| sw.handle(black_box(read.clone())))
    });
    let head_write = query(OpCode::Write, 0);
    c.bench_function("switch/head_write", |b| {
        b.iter(|| sw.handle(black_box(head_write.clone())))
    });
    c.bench_function("switch/replica_write_monotone_seq", |b| {
        let mut seq = 1u64;
        b.iter(|| {
            seq += 1;
            sw.handle(black_box(query(OpCode::Write, seq)))
        })
    });
}

criterion_group!(benches, bench_switch);
criterion_main!(benches);
