//! Reduced-size versions of the figure reproductions, so `cargo bench`
//! exercises every experiment path end to end and tracks regressions in the
//! time it takes to regenerate them.
use criterion::{criterion_group, criterion_main, Criterion};
use netchain_experiments::{fig10, fig11, fig9};
use netchain_sim::SimDuration;

fn bench_figures(c: &mut Criterion) {
    c.bench_function("figures/fig9a_capacity_model", |b| {
        b.iter(|| fig9::fig9a(&[0, 64, 128]))
    });
    c.bench_function("figures/fig9c_write_ratio_sweep", |b| {
        b.iter(|| fig9::fig9c(&[0.0, 0.5, 1.0]))
    });
    c.bench_function("figures/fig9f_scalability_small", |b| {
        b.iter(|| fig9::fig9f(&[6, 12]))
    });
    c.bench_function("figures/fig9d_loss_small_sim", |b| {
        b.iter(|| fig9::fig9d(&[0.01], SimDuration::from_millis(20)))
    });
    c.bench_function("figures/fig10_failover_small_sim", |b| {
        b.iter(|| {
            fig10::fig10(fig10::Fig10Params {
                virtual_groups: 10,
                offered_qps: 1_000.0,
                fail_at: SimDuration::from_secs(1),
                recovery_delay: SimDuration::from_secs(1),
                sync_duration: SimDuration::from_secs(4),
                total: SimDuration::from_secs(8),
            })
        })
    });
    c.bench_function("figures/fig11_txn_small_sim", |b| {
        b.iter(|| {
            fig11::netchain_txn_throughput(
                4,
                0.01,
                fig11::Fig11Params {
                    duration: SimDuration::from_millis(20),
                    locks_per_txn: 4,
                    cold_items: 200,
                },
            )
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_figures
}
criterion_main!(benches);
