//! Throughput benchmarks for the multi-core software switch fabric.
//!
//! Two layers are measured:
//!
//! * Criterion micro-benchmarks of the fabric's fast paths: zero-copy
//!   ([`PacketView`]) vs owned parsing, and whole-burst processing through a
//!   shard (parse → chain waves → batch-encoded replies).
//! * A scaling report (printed after the micro-benchmarks): aggregate ops/sec
//!   from [`run_capacity`] — each shard's partition timed run-to-completion,
//!   aggregated under the one-core-per-shard deployment model — versus worker
//!   shard count and versus chain length. This is the acceptance measurement:
//!   4 shards must deliver ≥2× the 1-shard aggregate on the uniform-read
//!   workload.

use criterion::{black_box, criterion_group, Criterion};
use netchain_fabric::{build_shards, run_capacity, FabricConfig, WorkloadSpec};
use netchain_telemetry::TraceConfig;
use netchain_wire::{
    BatchEncoder, ChainList, Ipv4Addr, Key, NetChainPacket, OpCode, PacketView, Value,
};

fn read_query_bytes(key: u64) -> Vec<u8> {
    NetChainPacket::query(
        Ipv4Addr::for_host(0),
        40_000,
        Ipv4Addr::for_switch(0),
        OpCode::Read,
        Key::from_u64(key),
        Value::empty(),
        ChainList::empty(),
        key,
    )
    .to_bytes()
}

fn write_query_bytes(key: u64, ring: &netchain_core::HashRing) -> Vec<u8> {
    let k = Key::from_u64(key);
    let chain = ring.chain_for_key(&k);
    NetChainPacket::query(
        Ipv4Addr::for_host(0),
        40_000,
        chain.head(),
        OpCode::Write,
        k,
        Value::from_u64(key),
        ChainList::new(chain.switches[1..].to_vec()).unwrap(),
        key,
    )
    .to_bytes()
}

fn bench_parse(c: &mut Criterion) {
    let bytes = read_query_bytes(42);
    c.bench_function("fabric/parse_owned", |b| {
        b.iter(|| NetChainPacket::from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("fabric/parse_view", |b| {
        b.iter(|| PacketView::parse(black_box(&bytes)).unwrap())
    });
    // The write-path arena: converting a parsed view into an owned packet,
    // fresh allocation vs refilling a pooled packet in place. The pooled
    // variant is what `Shard::process_burst` does — zero allocations in
    // steady state even for writes.
    let ring = FabricConfig::new(1).build_ring();
    let write_bytes = write_query_bytes(7, &ring);
    c.bench_function("fabric/write_to_owned_fresh", |b| {
        b.iter(|| {
            let view = PacketView::parse(black_box(&write_bytes)).unwrap();
            black_box(view.to_owned())
        })
    });
    c.bench_function("fabric/write_to_owned_pooled", |b| {
        let mut pooled = PacketView::parse(&write_bytes).unwrap().to_owned();
        b.iter(|| {
            let view = PacketView::parse(black_box(&write_bytes)).unwrap();
            view.to_owned_into(&mut pooled);
            black_box(&pooled);
        })
    });
}

fn bench_burst(c: &mut Criterion) {
    let config = FabricConfig::new(1);
    let workload = WorkloadSpec::uniform_read(1024, 0);
    let mut shards = build_shards(&config, &workload);
    let ring = config.build_ring();
    // A burst of reads addressed to each key's chain tail, like the loadgen.
    let frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| {
            let key = Key::from_u64(i % workload.num_keys);
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                ring.chain_for_key(&key).tail(),
                OpCode::Read,
                key,
                Value::empty(),
                ChainList::empty(),
                i,
            )
            .to_bytes()
        })
        .collect();
    let mut replies = BatchEncoder::with_capacity(config.burst, 128);
    c.bench_function("fabric/shard_burst_32_reads", |b| {
        b.iter(|| {
            replies.clear();
            shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
    // The write path end to end (parse → chain waves across 3 switches →
    // batch-encoded replies), exercising the packet pool: after the first
    // burst, the parse path recycles packet buffers instead of allocating.
    let write_frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| write_query_bytes(i % workload.num_keys, &ring))
        .collect();
    c.bench_function("fabric/shard_burst_32_writes", |b| {
        b.iter(|| {
            replies.clear();
            shards[0].process_burst(write_frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
}

/// The telemetry guard at micro-benchmark granularity: the same 32-read
/// burst with the tracer absent (the default fast path — must match
/// `shard_burst_32_reads`) and with 1-in-256 trace sampling enabled.
fn bench_burst_tracing(c: &mut Criterion) {
    let config = FabricConfig::new(1);
    let workload = WorkloadSpec::uniform_read(1024, 0);
    let ring = config.build_ring();
    let frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| {
            let key = Key::from_u64(i % workload.num_keys);
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                ring.chain_for_key(&key).tail(),
                OpCode::Read,
                key,
                Value::empty(),
                ChainList::empty(),
                i,
            )
            .to_bytes()
        })
        .collect();
    let mut replies = BatchEncoder::with_capacity(config.burst, 128);
    let mut untraced = build_shards(&config, &workload);
    c.bench_function("fabric/shard_burst_32_reads_trace_off", |b| {
        b.iter(|| {
            replies.clear();
            untraced[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
    let mut traced = build_shards(&config, &workload);
    traced[0].enable_tracing(TraceConfig::sampled(8, 1024), std::time::Instant::now());
    c.bench_function("fabric/shard_burst_32_reads_trace_on", |b| {
        b.iter(|| {
            replies.clear();
            traced[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len());
            // Keep the sink bounded across criterion's many iterations.
            black_box(traced[0].take_traces());
        })
    });
}

criterion_group!(benches, bench_parse, bench_burst, bench_burst_tracing);

/// The acceptance measurement: aggregate ops/sec vs worker shard count on the
/// uniform-read workload, and vs chain length at 4 shards.
fn scaling_report() {
    const OPS: u64 = 200_000;
    const KEYS: u64 = 1024;

    println!("\nfabric scaling: aggregate throughput vs worker shards");
    println!("(uniform-read, {KEYS} keys, {OPS} ops, one-core-per-shard capacity model)");
    let mut one_shard = 0.0f64;
    let mut four_shards = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let report = run_capacity(
            FabricConfig::new(shards),
            WorkloadSpec::uniform_read(KEYS, OPS),
        );
        assert_eq!(report.total_ops, OPS);
        assert_eq!(report.replies, OPS);
        println!(
            "  shards={shards}  {:>12.0} ops/sec  (slowest shard {:>10.0} ops/sec busy)",
            report.aggregate_ops_per_sec,
            report
                .per_shard_ops_per_sec
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
        );
        match shards {
            1 => one_shard = report.aggregate_ops_per_sec,
            4 => four_shards = report.aggregate_ops_per_sec,
            _ => {}
        }
    }
    let speedup = four_shards / one_shard;
    println!("  4-shard vs 1-shard speedup: {speedup:.2}x (acceptance: >= 2x)");
    assert!(
        speedup >= 2.0,
        "fabric does not scale: 4 shards gave only {speedup:.2}x over 1"
    );

    println!("\nfabric throughput vs chain length (4 shards, 50% writes)");
    for replication in [1usize, 2, 3, 4, 5] {
        let config = FabricConfig::new(4).with_replication(replication);
        let report = run_capacity(config, WorkloadSpec::mixed(KEYS, OPS, 50, 50));
        println!(
            "  chain={replication}  {:>12.0} ops/sec",
            report.aggregate_ops_per_sec
        );
    }
    println!();
}

fn main() {
    benches();
    scaling_report();
}
