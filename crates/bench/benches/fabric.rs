//! Throughput benchmarks for the multi-core software switch fabric.
//!
//! Two layers are measured:
//!
//! * Criterion micro-benchmarks of the fabric's fast paths: zero-copy
//!   ([`PacketView`]) vs owned parsing, and whole-burst processing through a
//!   shard (parse → chain waves → batch-encoded replies).
//! * A scaling report (printed after the micro-benchmarks): aggregate ops/sec
//!   from [`run_capacity`] — each shard's partition timed run-to-completion,
//!   aggregated under the one-core-per-shard deployment model — versus worker
//!   shard count and versus chain length. This is the acceptance measurement:
//!   4 shards must deliver ≥2× the 1-shard aggregate on the uniform-read
//!   workload.

use criterion::{black_box, criterion_group, Criterion};
use netchain_fabric::{build_shards, run_capacity, FabricConfig, Shard, WorkloadSpec};
use netchain_switch::{stable_hash_batch, PipelineConfig, SwitchKvStore};
use netchain_telemetry::TraceConfig;
use netchain_wire::{
    BatchEncoder, BatchView, ChainList, Ipv4Addr, Key, NetChainPacket, OpCode, PacketView, Value,
    BATCH_WIDTH,
};

fn read_query_bytes(key: u64) -> Vec<u8> {
    NetChainPacket::query(
        Ipv4Addr::for_host(0),
        40_000,
        Ipv4Addr::for_switch(0),
        OpCode::Read,
        Key::from_u64(key),
        Value::empty(),
        ChainList::empty(),
        key,
    )
    .to_bytes()
}

fn write_query_bytes(key: u64, ring: &netchain_core::HashRing) -> Vec<u8> {
    let k = Key::from_u64(key);
    let chain = ring.chain_for_key(&k);
    NetChainPacket::query(
        Ipv4Addr::for_host(0),
        40_000,
        chain.head(),
        OpCode::Write,
        k,
        Value::from_u64(key),
        ChainList::new(chain.switches[1..].to_vec()).unwrap(),
        key,
    )
    .to_bytes()
}

fn bench_parse(c: &mut Criterion) {
    let bytes = read_query_bytes(42);
    c.bench_function("fabric/parse_owned", |b| {
        b.iter(|| NetChainPacket::from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("fabric/parse_view", |b| {
        b.iter(|| PacketView::parse(black_box(&bytes)).unwrap())
    });
    // The write-path arena: converting a parsed view into an owned packet,
    // fresh allocation vs refilling a pooled packet in place. The pooled
    // variant is what `Shard::process_burst` does — zero allocations in
    // steady state even for writes.
    let ring = FabricConfig::new(1).build_ring();
    let write_bytes = write_query_bytes(7, &ring);
    c.bench_function("fabric/write_to_owned_fresh", |b| {
        b.iter(|| {
            let view = PacketView::parse(black_box(&write_bytes)).unwrap();
            black_box(view.to_owned())
        })
    });
    c.bench_function("fabric/write_to_owned_pooled", |b| {
        let mut pooled = PacketView::parse(&write_bytes).unwrap().to_owned();
        b.iter(|| {
            let view = PacketView::parse(black_box(&write_bytes)).unwrap();
            view.to_owned_into(&mut pooled);
            black_box(&pooled);
        })
    });
}

/// One single-shard fabric plus a 32-read burst addressed to each key's
/// chain tail, like the loadgen produces — the shared fixture for the burst
/// and staged-vs-scalar benches.
fn burst_fixture() -> (Vec<Shard>, Vec<Vec<u8>>) {
    let config = FabricConfig::new(1);
    let workload = WorkloadSpec::uniform_read(1024, 0);
    let shards = build_shards(&config, &workload);
    let ring = config.build_ring();
    let frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| {
            let key = Key::from_u64(i % workload.num_keys);
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                ring.chain_for_key(&key).tail(),
                OpCode::Read,
                key,
                Value::empty(),
                ChainList::empty(),
                i,
            )
            .to_bytes()
        })
        .collect();
    (shards, frames)
}

fn bench_burst(c: &mut Criterion) {
    let config = FabricConfig::new(1);
    let workload = WorkloadSpec::uniform_read(1024, 0);
    let ring = config.build_ring();
    let (mut shards, frames) = burst_fixture();
    let mut replies = BatchEncoder::with_capacity(config.burst, 128);
    c.bench_function("fabric/shard_burst_32_reads", |b| {
        b.iter(|| {
            replies.clear();
            shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
    // The write path end to end (parse → chain waves across 3 switches →
    // batch-encoded replies), exercising the packet pool: after the first
    // burst, the parse path recycles packet buffers instead of allocating.
    let write_frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| write_query_bytes(i % workload.num_keys, &ring))
        .collect();
    c.bench_function("fabric/shard_burst_32_writes", |b| {
        b.iter(|| {
            replies.clear();
            shards[0].process_burst(write_frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
}

/// The telemetry guard at micro-benchmark granularity: the same 32-read
/// burst with the tracer absent (the default fast path — must match
/// `shard_burst_32_reads`) and with 1-in-256 trace sampling enabled.
fn bench_burst_tracing(c: &mut Criterion) {
    let config = FabricConfig::new(1);
    let workload = WorkloadSpec::uniform_read(1024, 0);
    let ring = config.build_ring();
    let frames: Vec<Vec<u8>> = (0..config.burst as u64)
        .map(|i| {
            let key = Key::from_u64(i % workload.num_keys);
            NetChainPacket::query(
                Ipv4Addr::for_host(0),
                40_000,
                ring.chain_for_key(&key).tail(),
                OpCode::Read,
                key,
                Value::empty(),
                ChainList::empty(),
                i,
            )
            .to_bytes()
        })
        .collect();
    let mut replies = BatchEncoder::with_capacity(config.burst, 128);
    let mut untraced = build_shards(&config, &workload);
    c.bench_function("fabric/shard_burst_32_reads_trace_off", |b| {
        b.iter(|| {
            replies.clear();
            untraced[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
    let mut traced = build_shards(&config, &workload);
    traced[0].enable_tracing(TraceConfig::sampled(8, 1024), std::time::Instant::now());
    c.bench_function("fabric/shard_burst_32_reads_trace_on", |b| {
        b.iter(|| {
            replies.clear();
            traced[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len());
            // Keep the sink bounded across criterion's many iterations.
            black_box(traced[0].take_traces());
        })
    });
}

/// Per-stage micro-benchmarks of the staged hot path, each against its
/// scalar counterpart: batch validate+parse versus per-frame [`PacketView`],
/// lane-major batch key hashing versus the scalar FNV loop, and the hashed
/// open-addressed index probe.
fn bench_staged_stages(c: &mut Criterion) {
    let frames: Vec<Vec<u8>> = (0..BATCH_WIDTH as u64).map(read_query_bytes).collect();
    let refs: Vec<&[u8]> = frames.iter().map(|f| f.as_slice()).collect();

    c.bench_function("fabric/parse_batch_32", |b| {
        b.iter(|| {
            let bv = BatchView::parse(black_box(&refs));
            black_box(bv.batch().invalid_count())
        })
    });
    c.bench_function("fabric/parse_scalar_32", |b| {
        b.iter(|| {
            let mut bad = 0usize;
            for f in black_box(&refs) {
                if PacketView::parse(f).is_err() {
                    bad += 1;
                }
            }
            black_box(bad)
        })
    });

    let batch = BatchView::parse(&refs);
    let keys: Vec<Key> = (0..BATCH_WIDTH).map(|i| batch.batch().key(i)).collect();
    let mut hashes = [0u64; BATCH_WIDTH];
    c.bench_function("fabric/hash_batch_32", |b| {
        b.iter(|| {
            stable_hash_batch(black_box(batch.batch().keys()), &mut hashes);
            black_box(hashes[0])
        })
    });
    c.bench_function("fabric/hash_scalar_32", |b| {
        b.iter(|| {
            for (i, k) in black_box(&keys).iter().enumerate() {
                hashes[i] = k.stable_hash();
            }
            black_box(hashes[0])
        })
    });

    // The hashed probe prepass over a store holding every benched key.
    let mut kv = SwitchKvStore::new(PipelineConfig::default());
    for k in &keys {
        kv.insert(*k, &Value::from_u64(7)).unwrap();
    }
    stable_hash_batch(batch.batch().keys(), &mut hashes);
    let mut slots = Vec::with_capacity(BATCH_WIDTH);
    c.bench_function("fabric/probe_batch_32", |b| {
        b.iter(|| {
            slots.clear();
            kv.probe_slots(black_box(&keys), &hashes, &mut slots);
            black_box(slots.len())
        })
    });
}

/// The headline comparison the staged refactor is accepted on: the same
/// 32-read burst through the staged `process_burst` and through the retained
/// scalar reference path.
fn bench_staged_vs_scalar(c: &mut Criterion) {
    let (mut shards, frames) = burst_fixture();
    let mut replies = BatchEncoder::with_capacity(frames.len(), 128);
    c.bench_function("fabric/staged_vs_scalar_burst/staged_32_reads", |b| {
        b.iter(|| {
            replies.clear();
            shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
    c.bench_function("fabric/staged_vs_scalar_burst/scalar_32_reads", |b| {
        b.iter(|| {
            replies.clear();
            shards[0].process_burst_scalar(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len())
        })
    });
}

criterion_group!(
    benches,
    bench_parse,
    bench_burst,
    bench_burst_tracing,
    bench_staged_stages,
    bench_staged_vs_scalar
);

/// The acceptance measurement: aggregate ops/sec vs worker shard count on the
/// uniform-read workload, and vs chain length at 4 shards.
fn scaling_report() {
    const OPS: u64 = 200_000;
    const KEYS: u64 = 1024;

    println!("\nfabric scaling: aggregate throughput vs worker shards");
    println!("(uniform-read, {KEYS} keys, {OPS} ops, one-core-per-shard capacity model)");
    let mut one_shard = 0.0f64;
    let mut four_shards = 0.0f64;
    for shards in [1usize, 2, 4, 8] {
        let report = run_capacity(
            FabricConfig::new(shards),
            WorkloadSpec::uniform_read(KEYS, OPS),
        );
        assert_eq!(report.total_ops, OPS);
        assert_eq!(report.replies, OPS);
        println!(
            "  shards={shards}  {:>12.0} ops/sec  (slowest shard {:>10.0} ops/sec busy)",
            report.aggregate_ops_per_sec,
            report
                .per_shard_ops_per_sec
                .iter()
                .cloned()
                .fold(f64::INFINITY, f64::min),
        );
        match shards {
            1 => one_shard = report.aggregate_ops_per_sec,
            4 => four_shards = report.aggregate_ops_per_sec,
            _ => {}
        }
    }
    let speedup = four_shards / one_shard;
    println!("  4-shard vs 1-shard speedup: {speedup:.2}x (acceptance: >= 2x)");
    assert!(
        speedup >= 2.0,
        "fabric does not scale: 4 shards gave only {speedup:.2}x over 1"
    );

    println!("\nfabric throughput vs chain length (4 shards, 50% writes)");
    for replication in [1usize, 2, 3, 4, 5] {
        let config = FabricConfig::new(4).with_replication(replication);
        let report = run_capacity(config, WorkloadSpec::mixed(KEYS, OPS, 50, 50));
        println!(
            "  chain={replication}  {:>12.0} ops/sec",
            report.aggregate_ops_per_sec
        );
    }
    println!();
}

/// Measured staged-vs-scalar acceptance: times the same 32-read burst
/// through both paths with a plain monotonic clock (minimum over several
/// repeats, so scheduler noise only ever slows a sample down, never speeds
/// it up) and asserts the staged pipeline's speedup floor — ≥1.3x in the
/// full run, ≥1.0x in CI smoke mode (`NETCHAIN_BENCH_SMOKE=1`).
fn staged_report(smoke: bool) {
    let (mut shards, frames) = burst_fixture();
    let mut replies = BatchEncoder::with_capacity(frames.len(), 128);
    let iters: u32 = if smoke { 3_000 } else { 20_000 };
    let repeats = if smoke { 3 } else { 5 };

    // Warm both paths untimed (fills the packet pool and faults the code in).
    for _ in 0..200 {
        replies.clear();
        shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
        replies.clear();
        shards[0].process_burst_scalar(frames.iter().map(|f| f.as_slice()), &mut replies);
    }

    let mut staged_ns = f64::INFINITY;
    let mut scalar_ns = f64::INFINITY;
    for _ in 0..repeats {
        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            replies.clear();
            shards[0].process_burst(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len());
        }
        staged_ns = staged_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));

        let t0 = std::time::Instant::now();
        for _ in 0..iters {
            replies.clear();
            shards[0].process_burst_scalar(frames.iter().map(|f| f.as_slice()), &mut replies);
            black_box(replies.len());
        }
        scalar_ns = scalar_ns.min(t0.elapsed().as_nanos() as f64 / f64::from(iters));
    }

    let speedup = scalar_ns / staged_ns;
    let per_op = frames.len() as f64;
    println!("\nstaged vs scalar, 32-read burst (min over {repeats}x{iters} iters)");
    println!(
        "  scalar: {scalar_ns:>8.0} ns/burst  ({:.1} ns/op)",
        scalar_ns / per_op
    );
    println!(
        "  staged: {staged_ns:>8.0} ns/burst  ({:.1} ns/op)",
        staged_ns / per_op
    );
    println!("  speedup: {speedup:.2}x");
    let floor = if smoke { 1.0 } else { 1.3 };
    assert!(
        speedup >= floor,
        "staged burst path regressed: {speedup:.2}x (floor {floor}x)"
    );
}

fn main() {
    if std::env::var("NETCHAIN_BENCH_SMOKE").as_deref() == Ok("1") {
        // CI smoke: skip criterion and the scaling sweep, just guard the
        // staged hot path against regressing below the scalar reference.
        staged_report(true);
        return;
    }
    benches();
    scaling_report();
    staged_report(false);
}
