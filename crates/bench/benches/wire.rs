//! Micro-benchmarks of the wire formats: packet emit, parse, and the chain
//! rewrite the data plane performs per hop.
use criterion::{black_box, criterion_group, criterion_main, Criterion};
use netchain_wire::{ChainList, Ipv4Addr, Key, NetChainPacket, OpCode, Value};

fn sample_packet() -> NetChainPacket {
    NetChainPacket::query(
        Ipv4Addr::for_host(0),
        40000,
        Ipv4Addr::for_switch(0),
        OpCode::Write,
        Key::from_name("benchmark-key"),
        Value::filled(0xab, 64).unwrap(),
        ChainList::new(vec![Ipv4Addr::for_switch(1), Ipv4Addr::for_switch(2)]).unwrap(),
        1,
    )
}

fn bench_wire(c: &mut Criterion) {
    let pkt = sample_packet();
    let bytes = pkt.to_bytes();
    c.bench_function("wire/emit_full_packet", |b| {
        b.iter(|| black_box(&pkt).to_bytes())
    });
    c.bench_function("wire/parse_full_packet", |b| {
        b.iter(|| NetChainPacket::from_bytes(black_box(&bytes)).unwrap())
    });
    c.bench_function("wire/advance_to_next_hop", |b| {
        b.iter(|| {
            let mut p = black_box(&pkt).clone();
            p.advance_to_next_hop();
            p
        })
    });
    c.bench_function("wire/key_stable_hash", |b| {
        let key = Key::from_name("benchmark-key");
        b.iter(|| black_box(&key).stable_hash())
    });
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);
