//! End-to-end simulator throughput: how many simulated NetChain queries per
//! wall-clock second the discrete-event engine sustains on the testbed.
use criterion::{criterion_group, criterion_main, Criterion};
use netchain_core::{ClusterConfig, KvOp, NetChainCluster};
use netchain_sim::SimDuration;
use netchain_wire::{Key, Value};

fn bench_simulator(c: &mut Criterion) {
    c.bench_function("simulator/1000_scripted_writes_testbed", |b| {
        b.iter(|| {
            let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
            cluster.populate_key(Key::from_name("bench"), &Value::from_u64(0));
            let script: Vec<KvOp> = (0..1000)
                .map(|i| KvOp::Write(Key::from_name("bench"), Value::from_u64(i)))
                .collect();
            cluster.install_scripted_client(0, script);
            cluster.sim.run_for(SimDuration::from_secs(1));
            assert!(cluster.scripted_client(0).unwrap().is_done());
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_simulator
}
criterion_main!(benches);
