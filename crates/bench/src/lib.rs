//! Criterion benchmark crate for the NetChain reproduction (see `benches/`).
