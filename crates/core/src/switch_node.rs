//! Simulator adapter for a NetChain switch: hosts a
//! [`netchain_switch::NetChainSwitch`] on a topology node, performs underlay
//! L3 forwarding of whatever the data plane emits, and executes control-plane
//! RPCs from the controller.

use crate::message::{ControlMsg, NetMsg};
use netchain_sim::{Context, Node, NodeId, SimDuration};
use netchain_switch::{NetChainSwitch, SwitchAction};
use netchain_telemetry::{trace_id, TraceSink};
use netchain_wire::Ipv4Addr;
use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::rc::Rc;

/// A switch attached to the simulated topology.
pub struct SwitchNode {
    switch: NetChainSwitch,
    /// Underlay forwarding: destination IP → equal-cost next-hop neighbours,
    /// in preference order. The first *live* hop is used, which models the
    /// fast rerouting the underlay routing protocol provides on failures
    /// (§4.2 relies on it).
    l3: HashMap<Ipv4Addr, Vec<NodeId>>,
    /// Neighbours currently believed down (populated from failure
    /// notifications).
    down_neighbors: HashSet<NodeId>,
    /// One-way latency of control-plane responses back to the controller.
    control_latency: SimDuration,
    /// Packets dropped because no live route existed for the destination.
    dropped_no_route: u64,
    /// In-band trace stamping, shared with the other switches of the
    /// cluster (the simulator is single-threaded, so one sink serves all).
    tracer: Option<Rc<RefCell<TraceSink>>>,
}

impl SwitchNode {
    /// Creates the adapter.
    pub fn new(
        switch: NetChainSwitch,
        l3: HashMap<Ipv4Addr, Vec<NodeId>>,
        control_latency: SimDuration,
    ) -> Self {
        SwitchNode {
            switch,
            l3,
            down_neighbors: HashSet::new(),
            control_latency,
            dropped_no_route: 0,
            tracer: None,
        }
    }

    /// Attaches a (shared) trace sink: queries addressed to this switch get
    /// a per-hop stamp at simulated arrival time. Transit packets the
    /// underlay merely forwards are *not* stamped, so hop sequences are
    /// comparable with the fabric's (which has no L3 transit hops).
    pub fn set_tracer(&mut self, sink: Rc<RefCell<TraceSink>>) {
        self.tracer = Some(sink);
    }

    /// The data-plane model.
    pub fn switch(&self) -> &NetChainSwitch {
        &self.switch
    }

    /// Mutable access to the data-plane model (tests and direct population).
    pub fn switch_mut(&mut self) -> &mut NetChainSwitch {
        &mut self.switch
    }

    /// Packets dropped for lack of a route.
    pub fn dropped_no_route(&self) -> u64 {
        self.dropped_no_route
    }

    fn forward(&mut self, pkt: netchain_wire::NetChainPacket, ctx: &mut Context<NetMsg>) {
        let hops = self.l3.get(&pkt.ip.dst);
        let next = hops.and_then(|hops| {
            hops.iter()
                .copied()
                .find(|hop| !self.down_neighbors.contains(hop))
                .or_else(|| hops.first().copied())
        });
        match next {
            Some(next_hop) => ctx.send(next_hop, NetMsg::Data(pkt)),
            None => self.dropped_no_route += 1,
        }
    }

    fn apply_control(&mut self, from: NodeId, msg: ControlMsg, ctx: &mut Context<NetMsg>) {
        match msg {
            ControlMsg::InstallRule { failed_ip, rule } => {
                self.switch.forwarding_mut().install(failed_ip, rule);
            }
            ControlMsg::RemoveRule {
                failed_ip,
                priority,
                scope,
            } => {
                self.switch
                    .forwarding_mut()
                    .remove(failed_ip, priority, scope);
            }
            ControlMsg::InsertKey { key, value } => {
                // Idempotent from the controller's point of view: re-inserting
                // an existing key is a no-op.
                let _ = self.switch.kv_mut().insert(key, &value);
            }
            ControlMsg::GcKey { key } => {
                let _ = self.switch.kv_mut().garbage_collect(&key);
            }
            ControlMsg::SetSession { session } => {
                self.switch.set_session(session);
            }
            ControlMsg::SetActive { active } => {
                self.switch.set_active(active);
            }
            ControlMsg::ExportRequest {
                groups,
                modulus,
                token,
            } => {
                let entries: Vec<_> = self
                    .switch
                    .kv()
                    .export_entries()
                    .into_iter()
                    .filter(|entry| match &groups {
                        None => true,
                        Some(wanted) => {
                            let group =
                                (entry.key.stable_hash() % u64::from(modulus.max(1))) as u32;
                            wanted.contains(&group)
                        }
                    })
                    .collect();
                ctx.send_control(
                    from,
                    NetMsg::Control(ControlMsg::ExportResponse { entries, token }),
                    self.control_latency,
                );
            }
            ControlMsg::ExportResponse { .. } => {
                // Switches never receive export responses; ignore.
            }
            ControlMsg::ImportEntries { entries } => {
                for entry in &entries {
                    let _ = self.switch.kv_mut().import_entry(entry);
                }
            }
        }
    }
}

impl Node<NetMsg> for SwitchNode {
    fn on_node_down(&mut self, node: NodeId, _ctx: &mut Context<NetMsg>) {
        self.down_neighbors.insert(node);
    }

    fn on_node_up(&mut self, node: NodeId, _ctx: &mut Context<NetMsg>) {
        self.down_neighbors.remove(&node);
    }

    fn on_message(&mut self, from: NodeId, msg: NetMsg, ctx: &mut Context<NetMsg>) {
        match msg {
            NetMsg::Data(pkt) => {
                if let Some(tracer) = &self.tracer {
                    if pkt.ip.dst == self.switch.ip() && pkt.netchain.op.is_query() {
                        let id =
                            trace_id(u32::from_be_bytes(pkt.ip.src.0), pkt.netchain.request_id);
                        let mut sink = tracer.borrow_mut();
                        if sink.samples(id) {
                            let hop_ip = u32::from_be_bytes(self.switch.ip().0);
                            let at_ns = ctx.now().as_nanos();
                            match crate::evidence::query_evidence(&self.switch, &pkt.netchain) {
                                Some(ev) => sink.stamp_with(id, hop_ip, at_ns, ev),
                                None => sink.stamp(id, hop_ip, at_ns),
                            }
                        }
                    }
                }
                match self.switch.handle(pkt) {
                    SwitchAction::Forward(out) => self.forward(out, ctx),
                    SwitchAction::Drop(_) => {}
                }
            }
            NetMsg::Control(control) => self.apply_control(from, control, ctx),
        }
    }

    fn name(&self) -> String {
        format!("switch {}", self.switch.ip())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_switch::PipelineConfig;
    use netchain_wire::{Key, Value};

    #[test]
    fn control_messages_program_the_switch() {
        let sw = NetChainSwitch::new(Ipv4Addr::for_switch(0), PipelineConfig::tiny(8));
        let mut node = SwitchNode::new(sw, HashMap::new(), SimDuration::from_millis(1));
        // Drive control handling directly (no simulator needed for this path).
        let key = Key::from_name("a");
        // A throwaway context is hard to fabricate without the simulator, so
        // exercise the pieces that do not need one via the inner switch.
        node.switch_mut()
            .kv_mut()
            .insert(key, &Value::from_u64(5))
            .unwrap();
        assert_eq!(node.switch().kv().store_size(), 1);
        assert_eq!(node.dropped_no_route(), 0);
    }
}
