//! The client agent (§3): translates API calls into NetChain query packets,
//! matches replies to outstanding requests, and retries on timeout (§4.3 —
//! NetChain relies on client-side retries because the chain runs over UDP).
//!
//! [`AgentCore`] is deliberately sans-IO: it produces packets and consumes
//! replies but never touches a socket or the simulator, so the same code
//! drives the discrete-event simulation ([`crate::client`]), the real UDP
//! loopback deployment (`netchain-net`), and unit tests.

use crate::directory::ChainDirectory;
use crate::types::{CompletedQuery, KvOp};
use netchain_sim::{LatencyStats, SimDuration, SimTime};
use netchain_wire::{Ipv4Addr, NetChainPacket, OpCode, QueryStatus, Value};
use std::collections::HashMap;

/// Static configuration of a client agent.
#[derive(Debug, Clone, Copy)]
pub struct AgentConfig {
    /// The client's IP address (source of queries, destination of replies).
    pub client_ip: Ipv4Addr,
    /// The client's UDP source port.
    pub udp_port: u16,
    /// How long to wait for a reply before retransmitting.
    pub timeout: SimDuration,
    /// How many retransmissions to attempt before abandoning a query.
    pub max_retries: u32,
}

impl AgentConfig {
    /// A sensible default for a datacenter client: 1 ms retransmission
    /// timeout, 10 retries.
    pub fn new(client_ip: Ipv4Addr) -> Self {
        AgentConfig {
            client_ip,
            udp_port: 40_000,
            timeout: SimDuration::from_millis(1),
            max_retries: 10,
        }
    }

    /// Returns a copy with the given timeout.
    pub fn with_timeout(mut self, timeout: SimDuration) -> Self {
        self.timeout = timeout;
        self
    }

    /// Returns a copy with the given retry budget.
    pub fn with_max_retries(mut self, max_retries: u32) -> Self {
        self.max_retries = max_retries;
        self
    }
}

/// Counters and latency statistics kept by an agent.
#[derive(Debug, Clone, Default)]
pub struct AgentStats {
    /// Queries issued (first transmissions, not counting retries).
    pub issued: u64,
    /// Queries completed with a reply.
    pub completed: u64,
    /// Completed queries whose status was `Ok`.
    pub ok: u64,
    /// Retransmissions sent.
    pub retries: u64,
    /// Queries abandoned after exhausting the retry budget.
    pub abandoned: u64,
    /// Replies that arrived for requests no longer outstanding (duplicates
    /// from retries, or replies after abandonment) — benign, but counted.
    pub stale_replies: u64,
    /// Replies whose `(session, seq)` version was *older* than a version this
    /// agent had already observed for the same key **before the query was
    /// issued**. Strong consistency means this must stay zero (§4.5: versions
    /// exposed to clients are monotonically increasing). Replies of queries
    /// that were *concurrent* with the newer observation are exempt — two
    /// overlapping operations may legitimately complete in either order.
    pub version_regressions: u64,
    /// Latency of completed queries (first transmission to reply).
    pub latency: LatencyStats,
}

/// The result of a retry poll.
#[derive(Debug, Default)]
pub struct RetryOutcome {
    /// Packets to retransmit now.
    pub retransmit: Vec<NetChainPacket>,
    /// Queries abandoned on this poll (retry budget exhausted).
    pub abandoned: Vec<CompletedQuery>,
}

#[derive(Debug, Clone)]
struct Outstanding {
    op: KvOp,
    first_sent: SimTime,
    last_sent: SimTime,
    retries: u32,
}

/// The sans-IO client agent core.
#[derive(Debug, Clone)]
pub struct AgentCore {
    config: AgentConfig,
    directory: ChainDirectory,
    next_request_id: u64,
    outstanding: HashMap<u64, Outstanding>,
    /// Per key: the newest `(session, seq)` observed and when it was observed.
    observed: HashMap<netchain_wire::Key, ((u64, u64), SimTime)>,
    stats: AgentStats,
}

impl AgentCore {
    /// Creates an agent with the given configuration and chain directory.
    pub fn new(config: AgentConfig, directory: ChainDirectory) -> Self {
        AgentCore {
            config,
            directory,
            next_request_id: 1,
            outstanding: HashMap::new(),
            observed: HashMap::new(),
            stats: AgentStats::default(),
        }
    }

    /// The agent's configuration.
    pub fn config(&self) -> &AgentConfig {
        &self.config
    }

    /// The chain directory currently in use.
    pub fn directory(&self) -> &ChainDirectory {
        &self.directory
    }

    /// Replaces the chain directory (the slow-path propagation of a chain
    /// reconfiguration to agents, §4.2).
    pub fn update_directory(&mut self, directory: ChainDirectory) {
        self.directory = directory;
    }

    /// Number of queries awaiting replies.
    pub fn outstanding(&self) -> usize {
        self.outstanding.len()
    }

    /// Statistics.
    pub fn stats(&self) -> &AgentStats {
        &self.stats
    }

    /// Mutable access to statistics (used by wrappers that add their own
    /// accounting).
    pub fn stats_mut(&mut self) -> &mut AgentStats {
        &mut self.stats
    }

    /// Starts a query: returns the request id and the packet to transmit.
    pub fn begin(&mut self, now: SimTime, op: KvOp) -> (u64, NetChainPacket) {
        let request_id = self.next_request_id;
        self.next_request_id += 1;
        let packet = self.build_packet(&op, request_id);
        self.outstanding.insert(
            request_id,
            Outstanding {
                op,
                first_sent: now,
                last_sent: now,
                retries: 0,
            },
        );
        self.stats.issued += 1;
        (request_id, packet)
    }

    /// Builds the wire packet for `op` with the given request id, consulting
    /// the directory for the chain route. Retries rebuild the packet so that
    /// a directory update between attempts takes effect.
    pub fn build_packet(&self, op: &KvOp, request_id: u64) -> NetChainPacket {
        let key = op.key();
        let (route, opcode, value) = match op {
            KvOp::Read(_) => (
                self.directory.read_route(&key),
                OpCode::Read,
                Value::empty(),
            ),
            KvOp::Write(_, v) => (self.directory.write_route(&key), OpCode::Write, v.clone()),
            KvOp::Cas { expected, new, .. } => (
                self.directory.write_route(&key),
                OpCode::Cas,
                netchain_switch::cas_value(*expected, *new),
            ),
            KvOp::Delete(_) => (
                self.directory.write_route(&key),
                OpCode::Delete,
                Value::empty(),
            ),
        };
        NetChainPacket::query(
            self.config.client_ip,
            self.config.udp_port,
            route.first_hop,
            opcode,
            key,
            value,
            route.remaining,
            request_id,
        )
    }

    /// Processes a reply packet. Returns the completed query if the reply
    /// matches an outstanding request, or `None` for duplicates/stale replies.
    pub fn on_reply(&mut self, now: SimTime, pkt: &NetChainPacket) -> Option<CompletedQuery> {
        if !pkt.netchain.op.is_reply() {
            return None;
        }
        let request_id = pkt.netchain.request_id;
        let Some(outstanding) = self.outstanding.remove(&request_id) else {
            self.stats.stale_replies += 1;
            return None;
        };
        let latency = now.since(outstanding.first_sent);
        self.stats.completed += 1;
        if pkt.netchain.status == QueryStatus::Ok {
            self.stats.ok += 1;
        }
        self.stats.latency.record(latency);

        // Version monotonicity check (per-key, session-guarantee form): a
        // query issued *after* a newer version was observed must never expose
        // an older (session, seq). Queries concurrent with the newer
        // observation are exempt — overlapping operations may complete in
        // either order.
        if pkt.netchain.status == QueryStatus::Ok {
            let version = (u64::from(pkt.netchain.session), pkt.netchain.seq);
            let entry = self
                .observed
                .entry(pkt.netchain.key)
                .or_insert((version, now));
            if version < entry.0 {
                if outstanding.first_sent >= entry.1 {
                    self.stats.version_regressions += 1;
                }
            } else {
                *entry = (version, now);
            }
        }

        Some(CompletedQuery {
            request_id,
            op: outstanding.op,
            status: Some(pkt.netchain.status),
            value: pkt.netchain.value.clone(),
            seq: pkt.netchain.seq,
            session: u64::from(pkt.netchain.session),
            latency,
            retries: outstanding.retries,
        })
    }

    /// Checks every outstanding query against the retransmission timeout.
    /// Queries past their budget are abandoned; the rest get fresh packets to
    /// retransmit (rebuilt from the current directory).
    pub fn poll_retries(&mut self, now: SimTime) -> RetryOutcome {
        let mut outcome = RetryOutcome::default();
        let expired: Vec<u64> = self
            .outstanding
            .iter()
            .filter(|(_, o)| now.since(o.last_sent) >= self.config.timeout)
            .map(|(&id, _)| id)
            .collect();
        for id in expired {
            let entry = self.outstanding.get_mut(&id).expect("id collected above");
            if entry.retries >= self.config.max_retries {
                let entry = self.outstanding.remove(&id).expect("entry exists");
                self.stats.abandoned += 1;
                outcome.abandoned.push(CompletedQuery {
                    request_id: id,
                    op: entry.op,
                    status: None,
                    value: Value::empty(),
                    seq: 0,
                    session: 0,
                    latency: now.since(entry.first_sent),
                    retries: entry.retries,
                });
            } else {
                entry.retries += 1;
                entry.last_sent = now;
                let op = entry.op.clone();
                self.stats.retries += 1;
                let pkt = self.build_packet(&op, id);
                outcome.retransmit.push(pkt);
            }
        }
        outcome
    }

    /// The next instant at which [`Self::poll_retries`] could have work to do,
    /// if any queries are outstanding.
    pub fn next_retry_deadline(&self) -> Option<SimTime> {
        self.outstanding
            .values()
            .map(|o| o.last_sent + self.config.timeout)
            .min()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashring::HashRing;
    use netchain_wire::Key;

    fn agent() -> AgentCore {
        let switches: Vec<Ipv4Addr> = (0..4).map(Ipv4Addr::for_switch).collect();
        let dir = ChainDirectory::new(HashRing::new(switches, 25, 3, 5));
        AgentCore::new(AgentConfig::new(Ipv4Addr::for_host(0)), dir)
    }

    fn reply_to(mut pkt: NetChainPacket, seq: u64) -> NetChainPacket {
        let tail = pkt.ip.dst;
        pkt.netchain.seq = seq;
        pkt.make_reply(tail, QueryStatus::Ok, Value::from_u64(1));
        pkt
    }

    #[test]
    fn begin_builds_routes_matching_the_directory() {
        let mut a = agent();
        let key = Key::from_name("foo");
        let chain = a.directory().chain_for(&key);

        let (_, write_pkt) = a.begin(SimTime::ZERO, KvOp::Write(key, Value::from_u64(1)));
        assert_eq!(write_pkt.ip.dst, chain.head());
        assert_eq!(write_pkt.netchain.chain.hops(), &chain.switches[1..]);
        assert_eq!(write_pkt.netchain.op, OpCode::Write);
        assert_eq!(write_pkt.netchain.seq, 0, "head assigns the sequence");

        let (_, read_pkt) = a.begin(SimTime::ZERO, KvOp::Read(key));
        assert_eq!(read_pkt.ip.dst, chain.tail());
        assert_eq!(read_pkt.netchain.op, OpCode::Read);
        assert_eq!(a.outstanding(), 2);
        assert_eq!(a.stats().issued, 2);
    }

    #[test]
    fn reply_completes_and_records_latency() {
        let mut a = agent();
        let key = Key::from_name("foo");
        let (id, pkt) = a.begin(SimTime::ZERO, KvOp::Write(key, Value::from_u64(1)));
        let reply = reply_to(pkt, 3);
        let done = a
            .on_reply(SimTime::ZERO + SimDuration::from_micros(10), &reply)
            .expect("reply matches");
        assert_eq!(done.request_id, id);
        assert!(done.is_ok());
        assert_eq!(done.latency, SimDuration::from_micros(10));
        assert_eq!(done.seq, 3);
        assert_eq!(a.outstanding(), 0);
        assert_eq!(a.stats().completed, 1);
        assert_eq!(a.stats().ok, 1);
        // A duplicate reply is stale.
        assert!(a
            .on_reply(SimTime::ZERO + SimDuration::from_micros(20), &reply)
            .is_none());
        assert_eq!(a.stats().stale_replies, 1);
    }

    #[test]
    fn version_regression_is_detected_for_sequential_queries() {
        let mut a = agent();
        let key = Key::from_name("foo");
        // First query observes seq 5 at t=5µs.
        let (_, pkt1) = a.begin(SimTime::ZERO, KvOp::Read(key));
        a.on_reply(
            SimTime::ZERO + SimDuration::from_micros(5),
            &reply_to(pkt1, 5),
        );
        // A second query issued *after* that observation must not see seq 3.
        let (_, pkt2) = a.begin(
            SimTime::ZERO + SimDuration::from_micros(10),
            KvOp::Read(key),
        );
        a.on_reply(
            SimTime::ZERO + SimDuration::from_micros(15),
            &reply_to(pkt2, 3),
        );
        assert_eq!(a.stats().version_regressions, 1);
    }

    #[test]
    fn concurrent_queries_may_complete_out_of_order_without_regression() {
        let mut a = agent();
        let key = Key::from_name("foo");
        // Both queries are outstanding at the same time; the one carrying the
        // older version completes second. That is legal for concurrent
        // operations and must not count as a regression.
        let (_, pkt1) = a.begin(SimTime::ZERO, KvOp::Read(key));
        let (_, pkt2) = a.begin(SimTime::ZERO, KvOp::Read(key));
        a.on_reply(
            SimTime::ZERO + SimDuration::from_micros(5),
            &reply_to(pkt1, 5),
        );
        a.on_reply(
            SimTime::ZERO + SimDuration::from_micros(6),
            &reply_to(pkt2, 3),
        );
        assert_eq!(a.stats().version_regressions, 0);
    }

    #[test]
    fn retries_then_abandonment() {
        let mut a = agent();
        let config_timeout = a.config().timeout;
        let key = Key::from_name("foo");
        let (_, _pkt) = a.begin(SimTime::ZERO, KvOp::Read(key));
        // Not yet expired.
        let early = a.poll_retries(SimTime::ZERO + SimDuration::from_micros(10));
        assert!(early.retransmit.is_empty() && early.abandoned.is_empty());
        // Drive through the full retry budget.
        let mut now = SimTime::ZERO;
        let mut total_retransmits = 0;
        for _ in 0..a.config().max_retries {
            now += config_timeout;
            let out = a.poll_retries(now);
            total_retransmits += out.retransmit.len();
            assert!(out.abandoned.is_empty());
        }
        assert_eq!(total_retransmits as u32, a.config().max_retries);
        // One more timeout abandons the query.
        now += config_timeout;
        let out = a.poll_retries(now);
        assert_eq!(out.abandoned.len(), 1);
        assert!(out.abandoned[0].is_abandoned());
        assert_eq!(a.outstanding(), 0);
        assert_eq!(a.stats().abandoned, 1);
        assert_eq!(a.stats().retries, u64::from(a.config().max_retries));
    }

    #[test]
    fn next_retry_deadline_tracks_oldest_outstanding() {
        let mut a = agent();
        assert_eq!(a.next_retry_deadline(), None);
        a.begin(SimTime::ZERO, KvOp::Read(Key::from_u64(1)));
        a.begin(
            SimTime::ZERO + SimDuration::from_micros(100),
            KvOp::Read(Key::from_u64(2)),
        );
        assert_eq!(
            a.next_retry_deadline(),
            Some(SimTime::ZERO + a.config().timeout)
        );
    }

    #[test]
    fn cas_packets_carry_expected_and_new() {
        let mut a = agent();
        let key = Key::from_name("lock");
        let (_, pkt) = a.begin(
            SimTime::ZERO,
            KvOp::Cas {
                key,
                expected: 0,
                new: 42,
            },
        );
        assert_eq!(pkt.netchain.op, OpCode::Cas);
        assert_eq!(pkt.netchain.value.as_bytes().len(), 16);
    }
}
