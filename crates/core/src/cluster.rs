//! Cluster assembly: builds a complete NetChain deployment — switches running
//! the NetChain program, hosts running client agents, and the controller — on
//! top of the discrete-event simulator, for either the four-switch testbed of
//! Figure 8 or an arbitrary spine–leaf fabric (§8.3).

use crate::agent::AgentConfig;
use crate::client::{ScriptedClient, WorkloadClient, WorkloadConfig};
use crate::controller::{Controller, ControllerConfig};
use crate::directory::{AddressMap, ChainDirectory};
use crate::hashring::HashRing;
use crate::message::NetMsg;
use crate::switch_node::SwitchNode;
use crate::types::KvOp;
use netchain_sim::{
    FaultPlan, LinkParams, NodeId, NodeKind, RoutingTables, SimConfig, SimTime, Simulator,
    Topology, TopologyBuilder,
};
use netchain_switch::{NetChainSwitch, PipelineConfig};
use netchain_wire::{Ipv4Addr, Key, Value};
use std::collections::HashMap;

/// Configuration of a whole cluster.
#[derive(Debug, Clone, Copy)]
pub struct ClusterConfig {
    /// Chain length, `f + 1`. The paper and all experiments use 3.
    pub replication: usize,
    /// Virtual nodes per switch (total virtual groups = switches × this).
    pub vnodes_per_switch: usize,
    /// Restrict the consistent-hash ring to the first N switches, leaving the
    /// rest as spares for failure recovery (the testbed experiment keeps S3
    /// out of the ring so it can replace a failed chain member). `None` puts
    /// every switch in the ring.
    pub ring_switches: Option<usize>,
    /// Seed for virtual-node placement on the ring.
    pub ring_seed: u64,
    /// Switch pipeline geometry.
    pub pipeline: PipelineConfig,
    /// Link parameters applied to every link.
    pub link: LinkParams,
    /// Simulator configuration (seed, detection delay).
    pub sim: SimConfig,
    /// Controller behaviour.
    pub controller: ControllerConfig,
    /// Client agent retransmission timeout / retry budget template.
    pub agent_timeout: netchain_sim::SimDuration,
    /// Client agent retry budget.
    pub agent_max_retries: u32,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            replication: 3,
            vnodes_per_switch: 25,
            ring_switches: None,
            ring_seed: 7,
            pipeline: PipelineConfig::tofino_prototype(),
            link: LinkParams::datacenter_40g(),
            sim: SimConfig::default(),
            controller: ControllerConfig::default(),
            agent_timeout: netchain_sim::SimDuration::from_millis(1),
            agent_max_retries: 10,
        }
    }
}

/// Where everything ended up in the simulator.
#[derive(Debug, Clone)]
pub struct ClusterLayout {
    /// Switch nodes, in switch-index order (S0, S1, …).
    pub switches: Vec<NodeId>,
    /// Host nodes, in host-index order (H0, H1, …).
    pub hosts: Vec<NodeId>,
    /// The controller node.
    pub controller: NodeId,
    /// IP ↔ node mapping.
    pub addr: AddressMap,
    /// Each host's ToR switch (gateway).
    pub gateways: HashMap<NodeId, NodeId>,
}

/// A complete NetChain deployment ready to run.
pub struct NetChainCluster {
    /// The simulator. Exposed so experiments can drive time and inspect nodes
    /// directly.
    pub sim: Simulator<NetMsg>,
    /// Node layout.
    pub layout: ClusterLayout,
    ring: HashRing,
    config: ClusterConfig,
}

impl NetChainCluster {
    /// Builds the four-switch, four-server testbed of Figure 8.
    pub fn testbed(config: ClusterConfig) -> Self {
        let mut b = TopologyBuilder::new();
        let switches: Vec<NodeId> = (0..4).map(|i| b.add_switch(format!("S{i}"))).collect();
        let hosts: Vec<NodeId> = (0..4).map(|i| b.add_host(format!("H{i}"))).collect();
        b.add_link(switches[0], switches[1], config.link);
        b.add_link(switches[1], switches[2], config.link);
        b.add_link(switches[0], switches[3], config.link);
        b.add_link(switches[3], switches[2], config.link);
        b.add_link(hosts[0], switches[0], config.link);
        b.add_link(hosts[1], switches[2], config.link);
        b.add_link(hosts[2], switches[2], config.link);
        b.add_link(hosts[3], switches[2], config.link);
        let controller = b.add_controller("controller");
        let topology = b.build();
        Self::assemble(topology, switches, hosts, controller, config)
    }

    /// Builds a spine–leaf deployment: `n_spine` spines, `n_leaf` leaves,
    /// `hosts_per_leaf` hosts per rack. All switches (spines and leaves) are
    /// NetChain nodes, as in the paper's scalability study.
    pub fn spine_leaf(
        n_spine: usize,
        n_leaf: usize,
        hosts_per_leaf: usize,
        config: ClusterConfig,
    ) -> Self {
        let mut b = TopologyBuilder::new();
        let spines: Vec<NodeId> = (0..n_spine)
            .map(|i| b.add_switch(format!("spine{i}")))
            .collect();
        let leaves: Vec<NodeId> = (0..n_leaf)
            .map(|i| b.add_switch(format!("leaf{i}")))
            .collect();
        let mut hosts = Vec::new();
        for (li, &leaf) in leaves.iter().enumerate() {
            for &spine in &spines {
                b.add_link(leaf, spine, config.link);
            }
            for hi in 0..hosts_per_leaf {
                let host = b.add_host(format!("host{li}-{hi}"));
                b.add_link(host, leaf, config.link);
                hosts.push(host);
            }
        }
        let controller = b.add_controller("controller");
        let topology = b.build();
        let switches: Vec<NodeId> = spines.into_iter().chain(leaves).collect();
        Self::assemble(topology, switches, hosts, controller, config)
    }

    fn assemble(
        topology: Topology,
        switches: Vec<NodeId>,
        hosts: Vec<NodeId>,
        controller: NodeId,
        config: ClusterConfig,
    ) -> Self {
        // Address assignment.
        let mut addr = AddressMap::new();
        for (i, &node) in switches.iter().enumerate() {
            addr.register(node, Ipv4Addr::for_switch(i as u32));
        }
        for (i, &node) in hosts.iter().enumerate() {
            addr.register(node, Ipv4Addr::for_host(i as u32));
        }
        addr.register(controller, Ipv4Addr::for_controller());

        // The ring over switch IPs (optionally only a prefix of the switches,
        // leaving the rest as recovery spares).
        let ring_count = config
            .ring_switches
            .unwrap_or(switches.len())
            .min(switches.len());
        let switch_ips: Vec<Ipv4Addr> = (0..ring_count)
            .map(|i| Ipv4Addr::for_switch(i as u32))
            .collect();
        let ring = HashRing::new(
            switch_ips,
            config.vnodes_per_switch,
            config.replication,
            config.ring_seed,
        );

        // Per-switch underlay forwarding tables (dst IP → next-hop neighbour).
        let routing = RoutingTables::compute(&topology);
        let mut l3_tables: HashMap<NodeId, HashMap<Ipv4Addr, Vec<NodeId>>> = HashMap::new();
        for &sw in &switches {
            let mut table = HashMap::new();
            for dst_node in switches.iter().chain(hosts.iter()) {
                if *dst_node == sw {
                    continue;
                }
                let dst_ip = addr.ip_of(*dst_node).expect("registered above");
                let hops = routing.next_hops(sw, *dst_node);
                if hops.is_empty() {
                    continue;
                }
                // Rotate the equal-cost set by a per-destination hash so
                // different flows prefer different paths (ECMP), while the
                // rest of the set remains available for fast reroute.
                let mut ordered: Vec<NodeId> = hops.to_vec();
                let rotation = (u64::from(dst_ip.to_u32()) % hops.len() as u64) as usize;
                ordered.rotate_left(rotation);
                table.insert(dst_ip, ordered);
            }
            l3_tables.insert(sw, table);
        }

        // Gateways: each host's single ToR switch.
        let mut gateways = HashMap::new();
        for &host in &hosts {
            let neighbors = topology.neighbors(host);
            if let Some(&gw) = neighbors.first() {
                gateways.insert(host, gw);
            }
        }

        // Controller's view of switch adjacency (switch → neighbouring
        // switches only).
        let mut switch_neighbors: HashMap<NodeId, Vec<NodeId>> = HashMap::new();
        for &sw in &switches {
            let neighbors: Vec<NodeId> = topology
                .neighbors(sw)
                .iter()
                .copied()
                .filter(|n| topology.kind(*n) == NodeKind::Switch)
                .collect();
            switch_neighbors.insert(sw, neighbors);
        }

        let layout = ClusterLayout {
            switches: switches.clone(),
            hosts: hosts.clone(),
            controller,
            addr: addr.clone(),
            gateways: gateways.clone(),
        };

        let mut sim = Simulator::new(topology, config.sim);
        // Switches.
        for &sw in &switches {
            let ip = addr.ip_of(sw).expect("registered");
            let data_plane = NetChainSwitch::new(ip, config.pipeline);
            let node = SwitchNode::new(
                data_plane,
                l3_tables.remove(&sw).unwrap_or_default(),
                config.controller.control_latency,
            );
            sim.install_node(sw, Box::new(node));
        }
        // Hosts start as idle scripted clients; experiments replace them.
        let directory = ChainDirectory::new(ring.clone());
        for &host in &hosts {
            let ip = addr.ip_of(host).expect("registered");
            let gw = gateways.get(&host).copied().unwrap_or(host);
            let agent = AgentConfig::new(ip)
                .with_timeout(config.agent_timeout)
                .with_max_retries(config.agent_max_retries);
            sim.install_node(
                host,
                Box::new(ScriptedClient::idle(agent, directory.clone(), gw)),
            );
        }
        // Controller.
        let controller_node =
            Controller::new(config.controller, ring.clone(), addr, switch_neighbors);
        sim.install_node(controller, Box::new(controller_node));

        NetChainCluster {
            sim,
            layout,
            ring,
            config,
        }
    }

    /// The consistent-hash ring in use.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The cluster configuration.
    pub fn config(&self) -> &ClusterConfig {
        &self.config
    }

    /// A fresh chain directory (what an agent would be bootstrapped with).
    pub fn directory(&self) -> ChainDirectory {
        ChainDirectory::new(self.ring.clone())
    }

    /// The agent configuration template for the host at `host_index`.
    pub fn agent_config(&self, host_index: usize) -> AgentConfig {
        let host = self.layout.hosts[host_index];
        let ip = self.layout.addr.ip_of(host).expect("hosts have addresses");
        AgentConfig::new(ip)
            .with_timeout(self.config.agent_timeout)
            .with_max_retries(self.config.agent_max_retries)
    }

    /// Installs (pre-populates) a key on every switch of its chain, the way
    /// the controller would process an `Insert` (§4.1). Returns the chain it
    /// was installed on.
    pub fn populate_key(&mut self, key: Key, value: &Value) -> crate::hashring::ChainDescriptor {
        let chain = self.ring.chain_for_key(&key);
        for &ip in &chain.switches {
            let node = self
                .layout
                .addr
                .node_of(ip)
                .expect("chain switches are registered");
            let switch = self
                .sim
                .node_as_mut::<SwitchNode>(node)
                .expect("switch nodes are SwitchNode");
            let _ = switch.switch_mut().kv_mut().insert(key, value);
        }
        chain
    }

    /// Pre-populates `count` keys (`Key::from_u64(0..count)`) with values of
    /// `value_size` bytes — the "store size" knob of Figure 9(b).
    pub fn populate_store(&mut self, count: u64, value_size: usize) {
        let value = Value::filled(0xcd, value_size.min(netchain_wire::MAX_VALUE_LEN))
            .expect("bounded size");
        for i in 0..count {
            self.populate_key(Key::from_u64(i), &value);
        }
    }

    /// Replaces the host at `host_index` with an open/closed-loop workload
    /// client.
    pub fn install_workload_client(&mut self, host_index: usize, workload: WorkloadConfig) {
        let host = self.layout.hosts[host_index];
        let gw = self.layout.gateways[&host];
        let agent = self.agent_config(host_index);
        let client = WorkloadClient::new(agent, self.directory(), gw, workload);
        self.sim.install_node(host, Box::new(client));
    }

    /// Replaces the host at `host_index` with a scripted client executing the
    /// given operations sequentially.
    pub fn install_scripted_client(&mut self, host_index: usize, script: Vec<KvOp>) {
        self.install_scripted_client_at(host_index, script, netchain_sim::SimDuration::ZERO);
    }

    /// Like [`Self::install_scripted_client`], but the script starts issuing
    /// only after `delay` — for phased experiments (e.g. a script that runs
    /// during the failover window and another after recovery).
    pub fn install_scripted_client_at(
        &mut self,
        host_index: usize,
        script: Vec<KvOp>,
        delay: netchain_sim::SimDuration,
    ) {
        let host = self.layout.hosts[host_index];
        let gw = self.layout.gateways[&host];
        let agent = self.agent_config(host_index);
        let client =
            ScriptedClient::new(agent, self.directory(), gw, script).with_start_delay(delay);
        self.sim.install_node(host, Box::new(client));
    }

    /// Schedules a fail-stop of switch `switch_index` at time `at`.
    pub fn fail_switch_at(&mut self, at: SimTime, switch_index: usize) {
        let node = self.layout.switches[switch_index];
        let plan = FaultPlan::none().fail_at(at, node);
        self.sim.apply_fault_plan(&plan);
    }

    /// Borrow the workload client installed at `host_index`.
    pub fn workload_client(&self, host_index: usize) -> Option<&WorkloadClient> {
        self.sim
            .node_as::<WorkloadClient>(self.layout.hosts[host_index])
    }

    /// Borrow the scripted client installed at `host_index`.
    pub fn scripted_client(&self, host_index: usize) -> Option<&ScriptedClient> {
        self.sim
            .node_as::<ScriptedClient>(self.layout.hosts[host_index])
    }

    /// Turns on in-band trace stamping on every switch. All switches share
    /// one sink (the simulator is single-threaded); drain it after the run
    /// for the per-hop chain breakdowns. Clients do not stamp — the sink
    /// records the switch-visit sequence, which is what differential checks
    /// against the fabric compare.
    pub fn enable_switch_tracing(
        &mut self,
        config: netchain_telemetry::TraceConfig,
    ) -> std::rc::Rc<std::cell::RefCell<netchain_telemetry::TraceSink>> {
        let sink = std::rc::Rc::new(std::cell::RefCell::new(netchain_telemetry::TraceSink::new(
            config,
        )));
        for &node in &self.layout.switches {
            let switch = self
                .sim
                .node_as_mut::<SwitchNode>(node)
                .expect("switch nodes are SwitchNode");
            switch.set_tracer(std::rc::Rc::clone(&sink));
        }
        sink
    }

    /// Borrow the switch adapter at `switch_index`.
    pub fn switch(&self, switch_index: usize) -> &SwitchNode {
        self.sim
            .node_as::<SwitchNode>(self.layout.switches[switch_index])
            .expect("switch nodes are SwitchNode")
    }

    /// Borrow the controller.
    pub fn controller(&self) -> &Controller {
        self.sim
            .node_as::<Controller>(self.layout.controller)
            .expect("controller node is Controller")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_sim::SimDuration;
    use netchain_wire::QueryStatus;

    #[test]
    fn testbed_layout_and_population() {
        let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
        assert_eq!(cluster.layout.switches.len(), 4);
        assert_eq!(cluster.layout.hosts.len(), 4);
        let chain = cluster.populate_key(Key::from_name("foo"), &Value::from_u64(1));
        assert_eq!(chain.len(), 3);
        // Every switch in the chain now stores the key.
        for &ip in &chain.switches {
            let idx = (0..4)
                .find(|&i| Ipv4Addr::for_switch(i as u32) == ip)
                .unwrap();
            assert!(cluster
                .switch(idx)
                .switch()
                .kv()
                .lookup(&Key::from_name("foo"))
                .is_some());
        }
    }

    #[test]
    fn scripted_write_then_read_end_to_end() {
        let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
        cluster.populate_key(Key::from_name("foo"), &Value::from_u64(0));
        cluster.install_scripted_client(
            0,
            vec![
                KvOp::Write(Key::from_name("foo"), Value::from_u64(42)),
                KvOp::Read(Key::from_name("foo")),
            ],
        );
        cluster.sim.run_for(SimDuration::from_millis(100));
        let client = cluster.scripted_client(0).expect("installed");
        assert!(client.is_done(), "script should complete quickly");
        let results = client.results();
        assert_eq!(results.len(), 2);
        assert_eq!(results[0].status, Some(QueryStatus::Ok));
        assert_eq!(results[1].status, Some(QueryStatus::Ok));
        assert_eq!(results[1].value.as_u64(), Some(42));
        assert_eq!(client.agent_stats().version_regressions, 0);
    }

    #[test]
    fn spine_leaf_cluster_builds_and_serves() {
        let config = ClusterConfig {
            vnodes_per_switch: 4,
            ..Default::default()
        };
        let mut cluster = NetChainCluster::spine_leaf(2, 4, 1, config);
        assert_eq!(cluster.layout.switches.len(), 6);
        assert_eq!(cluster.layout.hosts.len(), 4);
        cluster.populate_key(Key::from_u64(1), &Value::from_u64(5));
        cluster.install_scripted_client(0, vec![KvOp::Read(Key::from_u64(1))]);
        cluster.sim.run_for(SimDuration::from_millis(100));
        let client = cluster.scripted_client(0).unwrap();
        assert_eq!(client.results().len(), 1);
        assert_eq!(client.results()[0].value.as_u64(), Some(5));
    }
}
