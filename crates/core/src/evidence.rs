//! Building audit [`Evidence`] from a query packet and the switch about to
//! execute it.
//!
//! Every execution mode (sim [`crate::SwitchNode`], fabric shard, net
//! worker) stamps sampled queries the same way: the hop's chain role is
//! derived from fields the packet already carries (mutation? sequence
//! assigned yet? chain exhausted?), and the version register `(session,
//! seq)` is read *before* the operation executes, so the stamp records what
//! the switch observed, not what the op wrote. Centralising the derivation
//! here keeps the three stamp sites byte-for-byte comparable — the auditor
//! merges their fragments into one history.

use netchain_switch::{FailoverAction, NetChainSwitch};
use netchain_telemetry::{key_fingerprint, Evidence, EvidenceOp, HopRole};
use netchain_wire::{NetChainHeader, OpCode};

/// Derives the evidence a switch should stamp for an incoming query, or
/// `None` for non-KV traffic (stat probes, replies) which carries no
/// consistency semantics.
///
/// The register read happens here, pre-execution: `ok` is whether the key
/// currently resolves to a live slot, and `(session, seq)` is that slot's
/// version register (zeroes on a miss). The chain role uses the
/// **effective** remaining chain: hops this switch's own fast-failover
/// rules will strip (Algorithm 2) don't count, so the surviving replica
/// that will generate the reply on a dead tail's behalf stamps `Tail`
/// (or `Solo`), not `Replica` — it *is* the commit point for this query.
pub fn query_evidence(switch: &NetChainSwitch, header: &NetChainHeader) -> Option<Evidence> {
    let op = evidence_op(header.op)?;
    let role = HopRole::for_query(
        header.op.is_mutation(),
        header.seq == 0,
        effective_chain_is_empty(switch, header),
    );
    let kv = switch.kv();
    let (ok, (session, seq)) = match kv.lookup(&header.key) {
        Some(slot) if kv.is_valid(slot) => (true, kv.ordering(slot)),
        _ => (false, (0, 0)),
    };
    Some(Evidence {
        op,
        role,
        ok,
        key_fp: key_fingerprint(header.key.stable_hash()),
        session,
        seq,
    })
}

/// True when every remaining chain hop is one this switch will strip via a
/// [`FailoverAction::ChainFailover`] rule, i.e. the query will not reach
/// another live replica after executing here. A hop with no rule (the
/// packet really forwards there), a `Redirect` (it continues on a
/// replacement), or a `Block` (it never acks, so the role is moot) stops
/// the walk: the chain is effectively non-empty.
fn effective_chain_is_empty(switch: &NetChainSwitch, header: &NetChainHeader) -> bool {
    header.chain.hops().iter().all(|&hop| {
        matches!(
            switch.forwarding().action_for(hop, &header.key),
            Some(FailoverAction::ChainFailover)
        )
    })
}

/// Maps a wire opcode (query or reply) to the audit evidence op kind, or
/// `None` for traffic without consistency semantics (stat probes).
pub fn evidence_op(op: OpCode) -> Option<EvidenceOp> {
    Some(match op {
        OpCode::Read | OpCode::ReadReply => EvidenceOp::Read,
        OpCode::Write | OpCode::Insert | OpCode::WriteReply | OpCode::InsertReply => {
            EvidenceOp::Write
        }
        OpCode::Cas | OpCode::CasReply => EvidenceOp::Cas,
        OpCode::Delete | OpCode::DeleteReply => EvidenceOp::Delete,
        OpCode::Stat | OpCode::StatReply => return None,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_switch::PipelineConfig;
    use netchain_wire::{ChainList, Ipv4Addr, Key, QueryStatus, Value};

    fn header(op: OpCode, key: Key, seq: u64, chain: Vec<Ipv4Addr>) -> NetChainHeader {
        NetChainHeader {
            op,
            status: QueryStatus::Ok,
            session: 0,
            seq,
            request_id: 1,
            key,
            chain: ChainList::new(chain).unwrap(),
            value: Value::empty(),
        }
    }

    #[test]
    fn evidence_reads_the_register_before_execution() {
        let mut sw = NetChainSwitch::new(Ipv4Addr::for_switch(0), PipelineConfig::tiny(8));
        let key = Key::from_name("k");
        sw.kv_mut().insert(key, &Value::from_u64(7)).unwrap();
        let slot = sw.kv().lookup(&key).unwrap();
        let stored = sw.kv().ordering(slot);

        let next = Ipv4Addr::for_switch(1);
        let ev = query_evidence(&sw, &header(OpCode::Write, key, 0, vec![next])).unwrap();
        assert_eq!(ev.op, EvidenceOp::Write);
        assert_eq!(ev.role, HopRole::Head); // seq unassigned, chain remains
        assert!(ev.ok);
        assert_eq!(ev.version(), stored);
        assert_eq!(ev.key_fp, key_fingerprint(key.stable_hash()));

        // Same write at the end of the chain with the sequence assigned.
        let ev = query_evidence(&sw, &header(OpCode::Write, key, 9, vec![])).unwrap();
        assert_eq!(ev.role, HopRole::Tail);

        // A read addressed to the tail.
        let ev = query_evidence(&sw, &header(OpCode::Read, key, 0, vec![])).unwrap();
        assert_eq!(ev.op, EvidenceOp::Read);
        assert_eq!(ev.role, HopRole::Tail);
    }

    #[test]
    fn misses_and_probes_are_handled() {
        let sw = NetChainSwitch::new(Ipv4Addr::for_switch(0), PipelineConfig::tiny(8));
        let ev = query_evidence(
            &sw,
            &header(OpCode::Read, Key::from_name("nope"), 0, vec![]),
        )
        .unwrap();
        assert!(!ev.ok);
        assert_eq!(ev.version(), (0, 0));
        // Stat probes carry no consistency evidence.
        assert!(
            query_evidence(&sw, &header(OpCode::Stat, Key::from_name("s"), 0, vec![])).is_none()
        );
    }
}
