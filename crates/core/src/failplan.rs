//! Pure failover/recovery *planning*: what rules to install where, which
//! switches need session bumps, and the per-group two-phase repair steps —
//! as data, with no opinion about how the plan is delivered.
//!
//! Both halves of the repo's control plane execute these plans:
//!
//! * the simulated [`crate::controller::Controller`] delivers them as
//!   control-plane RPCs over the discrete-event network, and
//! * the live fabric controller (`netchain-livectl`) delivers them over the
//!   lock-free per-shard control channels of the multi-core fabric.
//!
//! Sharing the planner is what makes the live/simulated differential test
//! meaningful: the two executions install byte-identical rules and assign
//! identical session numbers, so any divergence in the resulting replies or
//! switch state is a real semantic divergence, not a planning artefact.
//!
//! Determinism matters here. Session numbers are assigned in plan order, so
//! the order of `new_heads` must not depend on hash-map iteration; the
//! planner sorts every set it derives.

use crate::hashring::HashRing;
use netchain_switch::{FailoverAction, FailoverRule, RuleScope};
use netchain_wire::Ipv4Addr;
use std::collections::HashSet;

/// Algorithm 2 (fast failover), as data: the rule every neighbour of the
/// failed switch installs, plus the switches that just became chain heads
/// and therefore need a session bump (§5.2, NOPaxos-style ordering).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailoverPlan {
    /// The failed switch the plan handles.
    pub failed_ip: Ipv4Addr,
    /// The rule to install at every neighbour of the failed switch (in the
    /// fabric, at every live switch — each shard sees all traffic for its
    /// keys, so "all live switches" is exactly "every neighbour programmed").
    pub rule: FailoverRule,
    /// Switches that became the head of at least one affected chain, in
    /// deterministic (sorted) order: `new_heads[i]` is assigned session
    /// `base_session + i` by the executor.
    pub new_heads: Vec<Ipv4Addr>,
}

impl FailoverPlan {
    /// Plans fast failover for `failed_ip` over `ring`.
    pub fn compute(ring: &HashRing, failed_ip: Ipv4Addr) -> Self {
        let mut new_heads: Vec<Ipv4Addr> = Vec::new();
        let mut seen: HashSet<Ipv4Addr> = HashSet::new();
        for &group in &ring.groups_involving(failed_ip) {
            let chain = ring.chain_for_group(group);
            if chain.head() == failed_ip {
                if let Some(successor) = chain.successor(failed_ip) {
                    if seen.insert(successor) {
                        new_heads.push(successor);
                    }
                }
            }
        }
        new_heads.sort();
        FailoverPlan {
            failed_ip,
            rule: FailoverRule {
                priority: 1,
                scope: RuleScope::All,
                action: FailoverAction::ChainFailover,
            },
            new_heads,
        }
    }
}

/// One virtual group's two-phase repair (Algorithm 3): block its traffic to
/// the failed switch, synchronise its state onto the replacement, then
/// activate the replacement with a redirect rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GroupRepair {
    /// The virtual group being repaired.
    pub group: u32,
    /// Phase 1: the block rule (priority 2, group-scoped).
    pub block: FailoverRule,
    /// The switches whose state is gathered for this group: every live ring
    /// switch other than the failed one and the replacement, in sorted
    /// (deterministic) order. The replacement imports the *union*; the
    /// per-key `(session, seq)` registers arbitrate, so the chain-suffix
    /// copy — the committed one — always wins. A group's keys can span many
    /// chains (especially with a coarse [`RecoveryPlan::modulus`] override),
    /// so a single per-chain donor would silently miss keys whose chain does
    /// not pass through it.
    pub donors: Vec<Ipv4Addr>,
    /// Phase 2: the redirect rule (priority 3, group-scoped) pointing at the
    /// replacement.
    pub redirect: FailoverRule,
}

/// Algorithm 3 (failure recovery), as data: the replacement switch and the
/// ordered per-group repair steps. Session numbers continue the failover
/// plan's sequence: the replacement is bumped once per activated group, in
/// step order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryPlan {
    /// The failed switch being replaced.
    pub failed_ip: Ipv4Addr,
    /// The switch absorbing the failed switch's virtual groups.
    pub replacement_ip: Ipv4Addr,
    /// The group modulus the rules are scoped by (the ring's virtual-node
    /// count, or the experiment's override).
    pub modulus: u32,
    /// Per-group repair steps, in execution order.
    pub steps: Vec<GroupRepair>,
}

impl RecoveryPlan {
    /// Plans recovery of `failed_ip` onto `replacement_ip`. `failed` is the
    /// full set of switches currently believed down (they cannot donate
    /// state).
    ///
    /// `recovery_groups` overrides the virtual-group granularity: `None`
    /// repairs the groups actually involving the failed switch at the ring's
    /// own granularity (the normal case); `Some(g)` repairs the whole key
    /// space in `g` equal hash groups, which is how the Figure 10 experiment
    /// compares "1 virtual group" against "100 virtual groups".
    pub fn compute(
        ring: &HashRing,
        failed_ip: Ipv4Addr,
        replacement_ip: Ipv4Addr,
        recovery_groups: Option<u32>,
        failed: &HashSet<Ipv4Addr>,
    ) -> Self {
        let modulus = recovery_groups
            .unwrap_or(ring.num_virtual_nodes() as u32)
            .max(1);
        let groups: Vec<u32> = match recovery_groups {
            Some(g) => (0..g.max(1)).collect(),
            None => ring.groups_involving(failed_ip),
        };
        let mut donors: Vec<Ipv4Addr> = ring
            .switches()
            .iter()
            .copied()
            .filter(|&ip| ip != failed_ip && ip != replacement_ip && !failed.contains(&ip))
            .collect();
        donors.sort();
        let steps = groups
            .into_iter()
            .map(|group| GroupRepair {
                group,
                block: FailoverRule {
                    priority: 2,
                    scope: RuleScope::Group { group, modulus },
                    action: FailoverAction::Block,
                },
                donors: donors.clone(),
                redirect: FailoverRule {
                    priority: 3,
                    scope: RuleScope::Group { group, modulus },
                    action: FailoverAction::Redirect(replacement_ip),
                },
            })
            .collect();
        RecoveryPlan {
            failed_ip,
            replacement_ip,
            modulus,
            steps,
        }
    }
}

/// Picks the replacement switch for `failed_ip`: the explicit choice if one
/// was configured, else a live switch not already in the affected chains (to
/// spread load), else any live switch.
pub fn pick_replacement(
    ring: &HashRing,
    failed_ip: Ipv4Addr,
    failed: &HashSet<Ipv4Addr>,
    explicit: Option<Ipv4Addr>,
) -> Option<Ipv4Addr> {
    if let Some(explicit) = explicit {
        return Some(explicit);
    }
    let affected: HashSet<Ipv4Addr> = ring
        .groups_involving(failed_ip)
        .iter()
        .flat_map(|&g| ring.chain_for_group(g).switches)
        .collect();
    let live: Vec<Ipv4Addr> = ring
        .switches()
        .iter()
        .copied()
        .filter(|ip| !failed.contains(ip))
        .collect();
    live.iter()
        .copied()
        .find(|ip| !affected.contains(ip))
        .or_else(|| live.first().copied())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> HashRing {
        HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 25, 3, 11)
    }

    #[test]
    fn failover_plan_is_deterministic_and_sorted() {
        let ring = ring();
        let failed = Ipv4Addr::for_switch(1);
        let a = FailoverPlan::compute(&ring, failed);
        let b = FailoverPlan::compute(&ring, failed);
        assert_eq!(a, b);
        let mut sorted = a.new_heads.clone();
        sorted.sort();
        assert_eq!(a.new_heads, sorted);
        assert!(!a.new_heads.contains(&failed));
        assert_eq!(a.rule.priority, 1);
        assert_eq!(a.rule.action, FailoverAction::ChainFailover);
    }

    #[test]
    fn recovery_plan_covers_involved_groups_with_donors() {
        let ring = ring();
        let failed = Ipv4Addr::for_switch(2);
        let replacement = Ipv4Addr::for_switch(0);
        let plan = RecoveryPlan::compute(&ring, failed, replacement, None, &HashSet::new());
        assert_eq!(plan.modulus, ring.num_virtual_nodes() as u32);
        assert_eq!(plan.steps.len(), ring.groups_involving(failed).len());
        for step in &plan.steps {
            // Every live switch except the failed one and the replacement
            // donates; the union import lets the version registers arbitrate.
            assert_eq!(
                step.donors,
                vec![Ipv4Addr::for_switch(1), Ipv4Addr::for_switch(3)]
            );
            assert_eq!(
                step.redirect.action,
                FailoverAction::Redirect(replacement),
                "redirect must target the replacement"
            );
            assert_eq!(
                step.block.scope,
                RuleScope::Group {
                    group: step.group,
                    modulus: plan.modulus
                }
            );
        }
    }

    #[test]
    fn recovery_groups_override_partitions_whole_keyspace() {
        let ring = ring();
        let failed = Ipv4Addr::for_switch(1);
        let plan = RecoveryPlan::compute(
            &ring,
            failed,
            Ipv4Addr::for_switch(3),
            Some(10),
            &HashSet::from([failed]),
        );
        assert_eq!(plan.modulus, 10);
        let groups: Vec<u32> = plan.steps.iter().map(|s| s.group).collect();
        assert_eq!(groups, (0..10).collect::<Vec<u32>>());
        for step in &plan.steps {
            assert!(!step.donors.contains(&failed));
            assert!(!step.donors.contains(&Ipv4Addr::for_switch(3)));
        }
    }

    #[test]
    fn replacement_picking_prefers_explicit_then_unaffected() {
        let ring = ring();
        let failed = Ipv4Addr::for_switch(1);
        let explicit = pick_replacement(
            &ring,
            failed,
            &HashSet::new(),
            Some(Ipv4Addr::for_switch(9)),
        );
        assert_eq!(explicit, Some(Ipv4Addr::for_switch(9)));
        let picked = pick_replacement(&ring, failed, &HashSet::from([failed]), None)
            .expect("live switches remain");
        assert_ne!(picked, failed);
    }
}
