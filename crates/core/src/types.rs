//! Shared application-level types: key-value operations as clients see them,
//! completed-query records, and error types.

use netchain_sim::SimDuration;
use netchain_wire::{Key, QueryStatus, Value};
use std::fmt;

/// A key-value operation as issued by an application through the client
/// agent. This is the NetChain API surface (§3, "NetChain client").
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum KvOp {
    /// Read the value of a key.
    Read(Key),
    /// Write the value of an existing key.
    Write(Key, Value),
    /// Compare-and-swap: replace the stored 8-byte value with `new` only if
    /// it currently equals `expected`. The primitive behind exclusive locks
    /// (§8.5).
    Cas {
        /// The key to operate on.
        key: Key,
        /// Expected current value.
        expected: u64,
        /// Replacement value.
        new: u64,
    },
    /// Delete (invalidate) a key.
    Delete(Key),
}

impl KvOp {
    /// The key this operation touches.
    pub fn key(&self) -> Key {
        match self {
            KvOp::Read(k) | KvOp::Delete(k) | KvOp::Write(k, _) => *k,
            KvOp::Cas { key, .. } => *key,
        }
    }

    /// True for operations that mutate state (and therefore traverse the
    /// whole chain head to tail).
    pub fn is_mutation(&self) -> bool {
        !matches!(self, KvOp::Read(_))
    }
}

/// The outcome of one completed (replied or abandoned) query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CompletedQuery {
    /// The request id the agent assigned.
    pub request_id: u64,
    /// The operation that was issued.
    pub op: KvOp,
    /// Status returned by the chain (or `None` if the query was abandoned
    /// after exhausting retries).
    pub status: Option<QueryStatus>,
    /// Value carried in the reply (current value for reads, applied value for
    /// writes, stored value for failed CAS).
    pub value: Value,
    /// Sequence number of the replied version (version monotonicity checks).
    pub seq: u64,
    /// Session number of the replied version.
    pub session: u64,
    /// Time from first transmission to completion.
    pub latency: SimDuration,
    /// Number of retransmissions that were needed.
    pub retries: u32,
}

impl CompletedQuery {
    /// True if the chain reported success.
    pub fn is_ok(&self) -> bool {
        self.status == Some(QueryStatus::Ok)
    }

    /// True if the query was abandoned (all retries timed out).
    pub fn is_abandoned(&self) -> bool {
        self.status.is_none()
    }
}

/// Errors surfaced by the NetChain client-side machinery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetChainError {
    /// The directory has no chain for the key (no switches registered).
    NoChain,
    /// The value is too large for the wire format / pipeline.
    ValueTooLarge(usize),
    /// An internal wire-format error (should not happen for well-formed ops).
    Wire(netchain_wire::WireError),
}

impl fmt::Display for NetChainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetChainError::NoChain => write!(f, "no chain is assigned for the key"),
            NetChainError::ValueTooLarge(n) => write!(f, "value of {n} bytes is too large"),
            NetChainError::Wire(e) => write!(f, "wire format error: {e}"),
        }
    }
}

impl std::error::Error for NetChainError {}

impl From<netchain_wire::WireError> for NetChainError {
    fn from(e: netchain_wire::WireError) -> Self {
        NetChainError::Wire(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn op_key_and_mutation_classification() {
        let k = Key::from_name("a");
        assert_eq!(KvOp::Read(k).key(), k);
        assert_eq!(KvOp::Write(k, Value::empty()).key(), k);
        assert_eq!(KvOp::Delete(k).key(), k);
        assert_eq!(
            KvOp::Cas {
                key: k,
                expected: 0,
                new: 1
            }
            .key(),
            k
        );
        assert!(!KvOp::Read(k).is_mutation());
        assert!(KvOp::Write(k, Value::empty()).is_mutation());
        assert!(KvOp::Delete(k).is_mutation());
    }

    #[test]
    fn completed_query_predicates() {
        let done = CompletedQuery {
            request_id: 1,
            op: KvOp::Read(Key::from_u64(1)),
            status: Some(QueryStatus::Ok),
            value: Value::empty(),
            seq: 0,
            session: 0,
            latency: SimDuration::from_micros(10),
            retries: 0,
        };
        assert!(done.is_ok());
        assert!(!done.is_abandoned());
        let abandoned = CompletedQuery {
            status: None,
            ..done
        };
        assert!(abandoned.is_abandoned());
        assert!(!abandoned.is_ok());
    }

    #[test]
    fn error_display_and_from() {
        let e: NetChainError = netchain_wire::WireError::ValueTooLong(500).into();
        assert!(e.to_string().contains("wire format"));
        assert!(NetChainError::NoChain.to_string().contains("chain"));
    }
}
