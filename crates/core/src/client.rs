//! Simulator nodes that drive the client agent: an open-/closed-loop workload
//! generator used by the throughput/latency experiments, and a scripted
//! client used by integration tests and examples.

use crate::agent::{AgentConfig, AgentCore, AgentStats};
use crate::directory::ChainDirectory;
use crate::message::NetMsg;
use crate::types::{CompletedQuery, KvOp};
use netchain_sim::{
    Context, LatencyStats, Node, NodeId, SimDuration, SimTime, ThroughputSeries, TimerToken,
};
use netchain_wire::{Key, Value};
use std::any::Any;
use std::collections::VecDeque;

const TIMER_ARRIVAL: TimerToken = 1;
const TIMER_RETRY: TimerToken = 2;
const TIMER_START: TimerToken = 3;

/// Configuration of a synthetic key-value workload, mirroring the parameters
/// the paper sweeps: value size, store size, write ratio, offered rate.
#[derive(Debug, Clone, Copy)]
pub struct WorkloadConfig {
    /// When the client starts issuing queries.
    pub start: SimDuration,
    /// How long the client keeps issuing queries after `start`.
    pub duration: SimDuration,
    /// Offered load in queries per second for open-loop operation. Zero means
    /// closed-loop operation with `closed_loop` outstanding queries.
    pub rate_qps: f64,
    /// Number of outstanding queries to maintain in closed-loop mode.
    pub closed_loop: usize,
    /// Fraction of queries that are writes (the rest are reads).
    pub write_ratio: f64,
    /// Size of written values, in bytes.
    pub value_size: usize,
    /// Number of distinct keys the client touches (`key_offset ..
    /// key_offset + num_keys`, as [`Key::from_u64`]).
    pub num_keys: u64,
    /// First key index.
    pub key_offset: u64,
    /// Bucket width of the recorded throughput time series.
    pub throughput_bucket: SimDuration,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            start: SimDuration::ZERO,
            duration: SimDuration::from_secs(1),
            rate_qps: 10_000.0,
            closed_loop: 4,
            write_ratio: 0.01,
            value_size: 64,
            num_keys: 20_000,
            key_offset: 0,
            throughput_bucket: SimDuration::from_secs(1),
        }
    }
}

impl WorkloadConfig {
    /// End of the query-issuing window.
    pub fn end(&self) -> SimTime {
        SimTime::ZERO + self.start + self.duration
    }
}

/// An open- or closed-loop workload client attached to one host.
pub struct WorkloadClient {
    agent: AgentCore,
    gateway: NodeId,
    config: WorkloadConfig,
    throughput: ThroughputSeries,
    read_latency: LatencyStats,
    write_latency: LatencyStats,
    issued_in_window: u64,
    abandoned_ops: u64,
}

impl WorkloadClient {
    /// Creates a workload client that sends through `gateway` (its ToR
    /// switch).
    pub fn new(
        agent_config: AgentConfig,
        directory: ChainDirectory,
        gateway: NodeId,
        config: WorkloadConfig,
    ) -> Self {
        WorkloadClient {
            agent: AgentCore::new(agent_config, directory),
            gateway,
            config,
            throughput: ThroughputSeries::new(config.throughput_bucket),
            read_latency: LatencyStats::new(),
            write_latency: LatencyStats::new(),
            issued_in_window: 0,
            abandoned_ops: 0,
        }
    }

    /// Agent-level statistics (issued/completed/retries/latency/regressions).
    pub fn agent_stats(&self) -> &AgentStats {
        self.agent.stats()
    }

    /// Completed-query throughput time series.
    pub fn throughput(&self) -> &ThroughputSeries {
        &self.throughput
    }

    /// Latency of completed read queries.
    pub fn read_latency(&mut self) -> &mut LatencyStats {
        &mut self.read_latency
    }

    /// Latency of completed write queries.
    pub fn write_latency(&mut self) -> &mut LatencyStats {
        &mut self.write_latency
    }

    /// Queries abandoned after exhausting retries.
    pub fn abandoned(&self) -> u64 {
        self.abandoned_ops
    }

    /// Queries issued during the workload window.
    pub fn issued(&self) -> u64 {
        self.issued_in_window
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= SimTime::ZERO + self.config.start && now < self.config.end()
    }

    fn pick_op(&self, ctx: &mut Context<NetMsg>) -> KvOp {
        let key =
            Key::from_u64(self.config.key_offset + ctx.random_below(self.config.num_keys.max(1)));
        if ctx.random_f64() < self.config.write_ratio {
            let value = Value::filled(
                0xab,
                self.config.value_size.min(netchain_wire::MAX_VALUE_LEN),
            )
            .expect("bounded by MAX_VALUE_LEN");
            KvOp::Write(key, value)
        } else {
            KvOp::Read(key)
        }
    }

    fn issue_one(&mut self, ctx: &mut Context<NetMsg>) {
        let op = self.pick_op(ctx);
        let (_, pkt) = self.agent.begin(ctx.now(), op);
        self.issued_in_window += 1;
        ctx.send(self.gateway, NetMsg::Data(pkt));
    }

    fn schedule_next_arrival(&self, ctx: &mut Context<NetMsg>) {
        if self.config.rate_qps <= 0.0 {
            return;
        }
        let mean = SimDuration::from_secs_f64(1.0 / self.config.rate_qps);
        let gap = ctx.random_exponential(mean);
        ctx.set_timer(gap, TIMER_ARRIVAL);
    }

    fn schedule_retry_poll(&self, ctx: &mut Context<NetMsg>) {
        let half = SimDuration::from_nanos((self.agent.config().timeout.as_nanos() / 2).max(1));
        ctx.set_timer(half, TIMER_RETRY);
    }
}

impl Node<NetMsg> for WorkloadClient {
    fn on_start(&mut self, ctx: &mut Context<NetMsg>) {
        ctx.set_timer(self.config.start, TIMER_ARRIVAL);
        ctx.set_timer(self.config.start + self.agent.config().timeout, TIMER_RETRY);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<NetMsg>) {
        match token {
            TIMER_ARRIVAL => {
                if !self.in_window(ctx.now()) {
                    return;
                }
                if self.config.rate_qps > 0.0 {
                    self.issue_one(ctx);
                    self.schedule_next_arrival(ctx);
                } else {
                    // Closed loop: bring the outstanding count up to target.
                    while self.agent.outstanding() < self.config.closed_loop {
                        self.issue_one(ctx);
                    }
                }
            }
            TIMER_RETRY => {
                let outcome = self.agent.poll_retries(ctx.now());
                for pkt in outcome.retransmit {
                    ctx.send(self.gateway, NetMsg::Data(pkt));
                }
                self.abandoned_ops += outcome.abandoned.len() as u64;
                // In closed-loop mode an abandoned query frees a slot.
                if self.config.rate_qps <= 0.0 && self.in_window(ctx.now()) {
                    while self.agent.outstanding() < self.config.closed_loop {
                        self.issue_one(ctx);
                    }
                }
                if self.in_window(ctx.now()) || self.agent.outstanding() > 0 {
                    self.schedule_retry_poll(ctx);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut Context<NetMsg>) {
        let NetMsg::Data(pkt) = msg else { return };
        if let Some(done) = self.agent.on_reply(ctx.now(), &pkt) {
            self.throughput.record(ctx.now());
            match done.op {
                KvOp::Read(_) => self.read_latency.record(done.latency),
                _ => self.write_latency.record(done.latency),
            }
            if self.config.rate_qps <= 0.0 && self.in_window(ctx.now()) {
                self.issue_one(ctx);
            }
        }
    }

    fn name(&self) -> String {
        format!("workload-client {}", self.agent.config().client_ip)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

/// A client that executes a fixed script of operations sequentially (one
/// outstanding at a time), recording every completion. Used by integration
/// tests, examples, and the quickstart.
pub struct ScriptedClient {
    agent: AgentCore,
    gateway: NodeId,
    script: VecDeque<KvOp>,
    results: Vec<CompletedQuery>,
    started: bool,
    /// How long after simulation start the script begins (phased experiments
    /// install several scripted clients up front and stagger them).
    start_delay: SimDuration,
}

impl ScriptedClient {
    /// Creates a scripted client.
    pub fn new(
        agent_config: AgentConfig,
        directory: ChainDirectory,
        gateway: NodeId,
        script: Vec<KvOp>,
    ) -> Self {
        ScriptedClient {
            agent: AgentCore::new(agent_config, directory),
            gateway,
            script: script.into(),
            results: Vec::new(),
            started: false,
            start_delay: SimDuration::ZERO,
        }
    }

    /// Returns a copy that starts issuing only after `delay`.
    pub fn with_start_delay(mut self, delay: SimDuration) -> Self {
        self.start_delay = delay;
        self
    }

    /// A client with nothing to do (placeholder for unused hosts).
    pub fn idle(agent_config: AgentConfig, directory: ChainDirectory, gateway: NodeId) -> Self {
        Self::new(agent_config, directory, gateway, Vec::new())
    }

    /// Completed operations, in script order.
    pub fn results(&self) -> &[CompletedQuery] {
        &self.results
    }

    /// Agent-level statistics.
    pub fn agent_stats(&self) -> &AgentStats {
        self.agent.stats()
    }

    /// True if the whole script has completed (or was abandoned).
    pub fn is_done(&self) -> bool {
        self.script.is_empty() && self.agent.outstanding() == 0 && self.started
    }

    fn issue_next(&mut self, ctx: &mut Context<NetMsg>) {
        if let Some(op) = self.script.pop_front() {
            let (_, pkt) = self.agent.begin(ctx.now(), op);
            ctx.send(self.gateway, NetMsg::Data(pkt));
            ctx.set_timer(self.agent.config().timeout, TIMER_RETRY);
        }
    }
}

impl Node<NetMsg> for ScriptedClient {
    fn on_start(&mut self, ctx: &mut Context<NetMsg>) {
        if self.start_delay == SimDuration::ZERO {
            self.started = true;
            self.issue_next(ctx);
        } else {
            ctx.set_timer(self.start_delay, TIMER_START);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<NetMsg>) {
        if token == TIMER_START && !self.started {
            self.started = true;
            self.issue_next(ctx);
            return;
        }
        if token != TIMER_RETRY {
            return;
        }
        let outcome = self.agent.poll_retries(ctx.now());
        for pkt in outcome.retransmit {
            ctx.send(self.gateway, NetMsg::Data(pkt));
        }
        for done in outcome.abandoned {
            self.results.push(done);
            self.issue_next(ctx);
        }
        if self.agent.outstanding() > 0 {
            ctx.set_timer(self.agent.config().timeout, TIMER_RETRY);
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut Context<NetMsg>) {
        let NetMsg::Data(pkt) = msg else { return };
        if let Some(done) = self.agent.on_reply(ctx.now(), &pkt) {
            self.results.push(done);
            self.issue_next(ctx);
        }
    }

    fn name(&self) -> String {
        format!("scripted-client {}", self.agent.config().client_ip)
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hashring::HashRing;
    use netchain_wire::Ipv4Addr;

    fn directory() -> ChainDirectory {
        let switches: Vec<Ipv4Addr> = (0..3).map(Ipv4Addr::for_switch).collect();
        ChainDirectory::new(HashRing::new(switches, 4, 3, 1))
    }

    #[test]
    fn workload_config_window() {
        let config = WorkloadConfig {
            start: SimDuration::from_secs(1),
            duration: SimDuration::from_secs(2),
            ..Default::default()
        };
        assert_eq!(config.end(), SimTime::ZERO + SimDuration::from_secs(3));
    }

    #[test]
    fn scripted_client_tracks_script_state() {
        let client = ScriptedClient::new(
            AgentConfig::new(Ipv4Addr::for_host(0)),
            directory(),
            NodeId(0),
            vec![KvOp::Read(Key::from_u64(1))],
        );
        assert!(!client.is_done());
        assert!(client.results().is_empty());
        let idle = ScriptedClient::idle(
            AgentConfig::new(Ipv4Addr::for_host(1)),
            directory(),
            NodeId(0),
        );
        assert!(idle.script.is_empty());
    }
}
