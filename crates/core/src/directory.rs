//! The client-side directory: the small amount of state every NetChain agent
//! keeps to translate keys into chain routes (§4.2), plus the address map the
//! simulator adapters use to translate switch IPs into topology nodes.

use crate::hashring::{ChainDescriptor, HashRing};
use netchain_sim::NodeId;
use netchain_wire::{ChainList, Ipv4Addr, Key};
use std::collections::HashMap;

/// Bidirectional mapping between IP addresses and simulator nodes.
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    ip_of_node: HashMap<NodeId, Ipv4Addr>,
    node_of_ip: HashMap<Ipv4Addr, NodeId>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers a node's IP address.
    pub fn register(&mut self, node: NodeId, ip: Ipv4Addr) {
        self.ip_of_node.insert(node, ip);
        self.node_of_ip.insert(ip, node);
    }

    /// The IP address of a node, if registered.
    pub fn ip_of(&self, node: NodeId) -> Option<Ipv4Addr> {
        self.ip_of_node.get(&node).copied()
    }

    /// The node carrying an IP address, if registered.
    pub fn node_of(&self, ip: Ipv4Addr) -> Option<NodeId> {
        self.node_of_ip.get(&ip).copied()
    }

    /// Number of registered addresses.
    pub fn len(&self) -> usize {
        self.ip_of_node.len()
    }

    /// True if nothing is registered.
    pub fn is_empty(&self) -> bool {
        self.ip_of_node.is_empty()
    }
}

/// The route a client agent uses for one query: the first hop to address the
/// packet to, plus the remaining chain hops to embed in the header.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRoute {
    /// Destination IP of the first chain hop.
    pub first_hop: Ipv4Addr,
    /// Remaining hops carried in the NetChain header.
    pub remaining: ChainList,
}

/// The key → chain directory a client agent consults. Thanks to consistent
/// hashing this is just the ring itself — a few kilobytes of state — rather
/// than a per-key table, exactly as the paper argues.
#[derive(Debug, Clone)]
pub struct ChainDirectory {
    ring: HashRing,
}

impl ChainDirectory {
    /// Wraps a hash ring.
    pub fn new(ring: HashRing) -> Self {
        ChainDirectory { ring }
    }

    /// The underlying ring.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The chain (head first) serving `key`.
    pub fn chain_for(&self, key: &Key) -> ChainDescriptor {
        self.ring.chain_for_key(key)
    }

    /// The virtual group of `key`.
    pub fn group_of(&self, key: &Key) -> u32 {
        self.ring.group_of(key)
    }

    /// The route for a *write/mutation* query: addressed to the head, with
    /// the rest of the chain (head → tail order) in the header (Figure 4).
    pub fn write_route(&self, key: &Key) -> QueryRoute {
        let chain = self.chain_for(key);
        let first_hop = chain.head();
        let remaining = ChainList::new(chain.switches[1..].to_vec())
            .expect("chains are far shorter than the header limit");
        QueryRoute {
            first_hop,
            remaining,
        }
    }

    /// The route for a *read* query: addressed to the tail, with the other
    /// chain switches in reverse order in the header — they are only used for
    /// failure handling (§4.2).
    pub fn read_route(&self, key: &Key) -> QueryRoute {
        let chain = self.chain_for(key);
        let first_hop = chain.tail();
        let mut rest: Vec<Ipv4Addr> = chain.switches[..chain.len() - 1].to_vec();
        rest.reverse();
        let remaining = ChainList::new(rest).expect("chains are far shorter than the header limit");
        QueryRoute {
            first_hop,
            remaining,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn directory() -> ChainDirectory {
        let switches: Vec<Ipv4Addr> = (0..4).map(Ipv4Addr::for_switch).collect();
        ChainDirectory::new(HashRing::new(switches, 25, 3, 9))
    }

    #[test]
    fn address_map_roundtrip() {
        let mut map = AddressMap::new();
        assert!(map.is_empty());
        map.register(NodeId(3), Ipv4Addr::for_switch(3));
        map.register(NodeId(7), Ipv4Addr::for_host(0));
        assert_eq!(map.len(), 2);
        assert_eq!(map.ip_of(NodeId(3)), Some(Ipv4Addr::for_switch(3)));
        assert_eq!(map.node_of(Ipv4Addr::for_host(0)), Some(NodeId(7)));
        assert_eq!(map.ip_of(NodeId(99)), None);
        assert_eq!(map.node_of(Ipv4Addr::for_switch(9)), None);
    }

    #[test]
    fn write_route_is_head_first() {
        let dir = directory();
        let key = Key::from_name("foo");
        let chain = dir.chain_for(&key);
        let route = dir.write_route(&key);
        assert_eq!(route.first_hop, chain.head());
        assert_eq!(route.remaining.len(), chain.len() - 1);
        assert_eq!(route.remaining.hops(), &chain.switches[1..]);
    }

    #[test]
    fn read_route_is_tail_with_reverse_rest() {
        let dir = directory();
        let key = Key::from_name("foo");
        let chain = dir.chain_for(&key);
        let route = dir.read_route(&key);
        assert_eq!(route.first_hop, chain.tail());
        let mut expected: Vec<Ipv4Addr> = chain.switches[..chain.len() - 1].to_vec();
        expected.reverse();
        assert_eq!(route.remaining.hops(), expected.as_slice());
    }

    #[test]
    fn routes_are_consistent_with_groups() {
        let dir = directory();
        for i in 0..50u64 {
            let key = Key::from_u64(i);
            let group = dir.group_of(&key);
            assert_eq!(dir.chain_for(&key), dir.ring().chain_for_group(group));
        }
    }
}
