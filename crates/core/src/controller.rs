//! The NetChain controller: the reconfiguration half of Vertical Paxos (§5),
//! running as a component of the (assumed reliable) network controller.
//!
//! On a switch failure it performs:
//!
//! 1. **Fast failover** (Algorithm 2): install a `ChainFailover` rule in every
//!    neighbour of the failed switch, so traffic destined to it skips to the
//!    next chain hop (or is answered on the spot if it was the last hop), and
//!    bump the session number of every switch that just became a chain head.
//! 2. **Failure recovery** (Algorithm 3): restore the affected chains to
//!    `f + 1` switches by copying state onto a replacement switch, one
//!    *virtual group* at a time, using the two-phase atomic switching
//!    (block → synchronise → activate) that preserves Invariant 1.
//!
//! The duration of each group's synchronisation models the dominant cost the
//! paper measures (copying register state through the switch control plane):
//! it is `total_sync_duration / number_of_affected_groups`, so one virtual
//! group blocks writes for the whole duration (Figure 10(a)) while 100 groups
//! block ~1 % of keys at a time (Figure 10(b)).

use crate::directory::AddressMap;
use crate::failplan::{self, FailoverPlan, RecoveryPlan};
use crate::hashring::HashRing;
use crate::message::{ControlMsg, NetMsg};
use netchain_sim::{Context, Node, NodeId, SimDuration, SimTime, TimerToken};
use netchain_switch::FailoverRule;
use netchain_telemetry::{Journal, SpanHandle};
use netchain_wire::Ipv4Addr;
use std::any::Any;
use std::collections::{HashMap, HashSet};

const TIMER_RECOVERY_BASE: TimerToken = 1_000;
const TIMER_SYNC_BASE: TimerToken = 2_000;

/// Controller configuration.
#[derive(Debug, Clone, Copy)]
pub struct ControllerConfig {
    /// One-way latency of controller ↔ switch control-plane messages.
    pub control_latency: SimDuration,
    /// Delay between completing fast failover and starting failure recovery
    /// (the paper's experiment separates the two by ~20 s to make the phases
    /// visible).
    pub recovery_start_delay: SimDuration,
    /// Total time to resynchronise all of a failed switch's state onto the
    /// replacement (the paper measures ~150 s for the 8 MB prototype store).
    pub total_sync_duration: SimDuration,
    /// Explicit replacement switch; `None` lets the controller pick a live
    /// switch that is not already in the affected chains.
    pub replacement: Option<Ipv4Addr>,
    /// Overrides the virtual-group granularity of failure recovery. `None`
    /// uses the ring's virtual nodes (the normal case); `Some(g)` recovers the
    /// key space in `g` equal hash groups instead, which is how the Figure 10
    /// experiment compares "1 virtual group" against "100 virtual groups".
    pub recovery_groups: Option<u32>,
    /// Whether to run failure recovery at all (fast failover always runs).
    pub auto_recovery: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            control_latency: SimDuration::from_millis(1),
            recovery_start_delay: SimDuration::from_secs(20),
            total_sync_duration: SimDuration::from_secs(150),
            replacement: None,
            recovery_groups: None,
            auto_recovery: true,
        }
    }
}

/// The phase a recovery task is in (exposed for tests and experiments).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecoveryPhase {
    /// Fast failover done, waiting to start recovery.
    WaitingToStart,
    /// Group-by-group synchronisation in progress.
    Syncing,
    /// All groups restored.
    Complete,
}

#[derive(Debug, Clone)]
struct RecoveryTask {
    failed_node: NodeId,
    /// The shared per-group repair plan this task executes step by step.
    plan: RecoveryPlan,
    current: usize,
    phase: RecoveryPhase,
}

/// A record of one completed failover/recovery, for reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RecoveryRecord {
    /// The switch that failed.
    pub failed_ip: Ipv4Addr,
    /// The switch that absorbed its virtual groups.
    pub replacement_ip: Ipv4Addr,
    /// Number of virtual groups restored.
    pub groups_recovered: usize,
    /// When fast failover rules were issued.
    pub failover_at: SimTime,
    /// When the last group finished recovery.
    pub recovered_at: SimTime,
}

/// The controller node.
pub struct Controller {
    config: ControllerConfig,
    ring: HashRing,
    addr: AddressMap,
    /// Neighbours of every switch node in the data-plane topology.
    switch_neighbors: HashMap<NodeId, Vec<NodeId>>,
    failed: HashSet<Ipv4Addr>,
    tasks: Vec<RecoveryTask>,
    records: Vec<RecoveryRecord>,
    pending_failover_at: HashMap<Ipv4Addr, SimTime>,
    /// Outstanding export responses per task (one group syncs at a time, so
    /// the task index is enough).
    pending_exports: HashMap<usize, usize>,
    next_session: u64,
    /// Control-plane event journal: failure detections, failover issuance,
    /// the recovery phase and every per-group sync as spans.
    journal: Journal,
    /// Open `recovery:` span per task.
    recovery_spans: HashMap<usize, SpanHandle>,
    /// Open `sync-group:` span per task (one group syncs at a time).
    sync_spans: HashMap<usize, SpanHandle>,
}

impl Controller {
    /// Creates a controller.
    ///
    /// `switch_neighbors` maps every *switch* node to its neighbouring
    /// *switch* nodes — the set Algorithm 2 programs on a failure.
    pub fn new(
        config: ControllerConfig,
        ring: HashRing,
        addr: AddressMap,
        switch_neighbors: HashMap<NodeId, Vec<NodeId>>,
    ) -> Self {
        Controller {
            config,
            ring,
            addr,
            switch_neighbors,
            failed: HashSet::new(),
            tasks: Vec::new(),
            records: Vec::new(),
            pending_failover_at: HashMap::new(),
            pending_exports: HashMap::new(),
            next_session: 1,
            journal: Journal::new(),
            recovery_spans: HashMap::new(),
            sync_spans: HashMap::new(),
        }
    }

    /// Completed recovery records.
    pub fn records(&self) -> &[RecoveryRecord] {
        &self.records
    }

    /// The control-plane event journal (failure detections, failover
    /// issuance, recovery and per-group sync spans, in simulated time).
    pub fn journal(&self) -> &Journal {
        &self.journal
    }

    /// Switches the controller currently believes failed.
    pub fn failed_switches(&self) -> &HashSet<Ipv4Addr> {
        &self.failed
    }

    /// Phase of the most recent recovery task for `failed_ip`, if any.
    pub fn recovery_phase(&self, failed_ip: Ipv4Addr) -> Option<RecoveryPhase> {
        self.tasks
            .iter()
            .rev()
            .find(|t| t.plan.failed_ip == failed_ip)
            .map(|t| t.phase)
    }

    fn neighbors_of(&self, node: NodeId) -> Vec<NodeId> {
        self.switch_neighbors
            .get(&node)
            .cloned()
            .unwrap_or_default()
    }

    fn send_rule(
        &self,
        ctx: &mut Context<NetMsg>,
        to: NodeId,
        failed_ip: Ipv4Addr,
        rule: FailoverRule,
    ) {
        ctx.send_control(
            to,
            NetMsg::Control(ControlMsg::InstallRule { failed_ip, rule }),
            self.config.control_latency,
        );
    }

    /// Algorithm 2: install fast-failover rules at the failed switch's
    /// neighbours and bump the session of every switch that became a head.
    /// The rules and the (deterministic) session order come from the shared
    /// [`FailoverPlan`]; this method only delivers them.
    fn fast_failover(
        &mut self,
        failed_node: NodeId,
        failed_ip: Ipv4Addr,
        ctx: &mut Context<NetMsg>,
    ) {
        let plan = FailoverPlan::compute(&self.ring, failed_ip);
        for neighbor in self.neighbors_of(failed_node) {
            self.send_rule(ctx, neighbor, failed_ip, plan.rule);
        }
        for head_ip in plan.new_heads {
            // The session is consumed per plan entry even if the head has no
            // registered node — the plan's `base_session + i` assignment must
            // hold in every executor or the live/sim differential breaks.
            let session = self.next_session;
            self.next_session += 1;
            if let Some(node) = self.addr.node_of(head_ip) {
                ctx.send_control(
                    node,
                    NetMsg::Control(ControlMsg::SetSession { session }),
                    self.config.control_latency,
                );
            }
        }
    }

    fn pick_replacement(&self, failed_ip: Ipv4Addr) -> Option<Ipv4Addr> {
        failplan::pick_replacement(&self.ring, failed_ip, &self.failed, self.config.replacement)
    }

    fn task_timer(&self, base: TimerToken, task_idx: usize) -> TimerToken {
        base + task_idx as TimerToken
    }

    fn start_group_sync(&mut self, task_idx: usize, ctx: &mut Context<NetMsg>) {
        let (failed_ip, failed_node, block, group_count) = {
            let task = &self.tasks[task_idx];
            (
                task.plan.failed_ip,
                task.failed_node,
                task.plan.steps[task.current].block,
                task.plan.steps.len(),
            )
        };
        // Phase 1 of two-phase atomic switching: block queries of this group
        // destined to the failed switch while the replacement synchronises.
        for neighbor in self.neighbors_of(failed_node) {
            self.send_rule(ctx, neighbor, failed_ip, block);
        }
        let group = self.tasks[task_idx].plan.steps[self.tasks[task_idx].current].group;
        let span = self
            .journal
            .begin(format!("sync-group:{group}"), ctx.now().as_nanos());
        self.sync_spans.insert(task_idx, span);
        // The synchronisation takes its share of the total sync budget.
        let per_group = SimDuration::from_nanos(
            self.config.total_sync_duration.as_nanos() / group_count.max(1) as u64,
        );
        ctx.set_timer(per_group, self.task_timer(TIMER_SYNC_BASE, task_idx));
    }

    fn finish_group_sync(&mut self, task_idx: usize, ctx: &mut Context<NetMsg>) {
        let (group, donors, modulus) = {
            let task = &self.tasks[task_idx];
            let step = &task.plan.steps[task.current];
            (step.group, step.donors.clone(), task.plan.modulus)
        };
        // Gather the group's state from every live replica; the replacement
        // imports the union and the per-key version registers arbitrate
        // (stale copies never clobber newer state). The last response
        // triggers the activation.
        let donor_nodes: Vec<NodeId> = donors
            .iter()
            .filter_map(|&ip| self.addr.node_of(ip))
            .collect();
        if donor_nodes.is_empty() {
            // Nothing to synchronise from (f = 0 or everything else dead).
            self.activate_group(task_idx, ctx);
            return;
        }
        self.pending_exports.insert(task_idx, donor_nodes.len());
        for node in donor_nodes {
            ctx.send_control(
                node,
                NetMsg::Control(ControlMsg::ExportRequest {
                    groups: Some(vec![group]),
                    modulus,
                    token: u64::from(group) | ((task_idx as u64) << 32),
                }),
                self.config.control_latency,
            );
        }
    }

    fn activate_group(&mut self, task_idx: usize, ctx: &mut Context<NetMsg>) {
        let (failed_ip, failed_node, replacement_ip, redirect, block) = {
            let task = &self.tasks[task_idx];
            let step = &task.plan.steps[task.current];
            (
                task.plan.failed_ip,
                task.failed_node,
                task.plan.replacement_ip,
                step.redirect,
                step.block,
            )
        };
        // Phase 2: activate the replacement for this group and redirect
        // traffic to it, overriding both the block rule and fast failover.
        // The session is consumed per activated group unconditionally, to
        // keep the sequence identical across executors (see fast_failover).
        let session = self.next_session;
        self.next_session += 1;
        if let Some(node) = self.addr.node_of(replacement_ip) {
            ctx.send_control(
                node,
                NetMsg::Control(ControlMsg::SetActive { active: true }),
                self.config.control_latency,
            );
            ctx.send_control(
                node,
                NetMsg::Control(ControlMsg::SetSession { session }),
                self.config.control_latency,
            );
        }
        for neighbor in self.neighbors_of(failed_node) {
            self.send_rule(ctx, neighbor, failed_ip, redirect);
            ctx.send_control(
                neighbor,
                NetMsg::Control(ControlMsg::RemoveRule {
                    failed_ip,
                    priority: block.priority,
                    scope: block.scope,
                }),
                self.config.control_latency,
            );
        }
        if let Some(span) = self.sync_spans.remove(&task_idx) {
            self.journal.end(span, ctx.now().as_nanos());
        }
        // Advance to the next group or finish.
        let task = &mut self.tasks[task_idx];
        task.current += 1;
        if task.current < task.plan.steps.len() {
            self.start_group_sync(task_idx, ctx);
        } else {
            task.phase = RecoveryPhase::Complete;
            if let Some(span) = self.recovery_spans.remove(&task_idx) {
                self.journal.end(span, ctx.now().as_nanos());
            }
            let record = RecoveryRecord {
                failed_ip,
                replacement_ip,
                groups_recovered: self.tasks[task_idx].plan.steps.len(),
                failover_at: self
                    .pending_failover_at
                    .get(&failed_ip)
                    .copied()
                    .unwrap_or(SimTime::ZERO),
                recovered_at: ctx.now(),
            };
            self.records.push(record);
        }
    }
}

impl Node<NetMsg> for Controller {
    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut Context<NetMsg>) {
        let NetMsg::Control(ControlMsg::ExportResponse { entries, token }) = msg else {
            return;
        };
        let task_idx = (token >> 32) as usize;
        if task_idx >= self.tasks.len() {
            return;
        }
        let replacement_ip = self.tasks[task_idx].plan.replacement_ip;
        if let Some(node) = self.addr.node_of(replacement_ip) {
            ctx.send_control(
                node,
                NetMsg::Control(ControlMsg::ImportEntries { entries }),
                self.config.control_latency,
            );
        }
        // Activate only once every donor has answered.
        let remaining = self
            .pending_exports
            .get_mut(&task_idx)
            .expect("an export response implies an outstanding request");
        *remaining -= 1;
        if *remaining == 0 {
            self.pending_exports.remove(&task_idx);
            self.activate_group(task_idx, ctx);
        }
    }

    fn on_node_down(&mut self, node: NodeId, ctx: &mut Context<NetMsg>) {
        let Some(failed_ip) = self.addr.ip_of(node) else {
            return;
        };
        // Only switches participate in chains.
        if !self.ring.switches().contains(&failed_ip) {
            return;
        }
        self.failed.insert(failed_ip);
        self.pending_failover_at.insert(failed_ip, ctx.now());
        self.journal.instant(
            format!("failure-detected:{failed_ip}"),
            ctx.now().as_nanos(),
        );
        self.fast_failover(node, failed_ip, ctx);
        // Rules are issued now and land one control-plane latency later —
        // the window Algorithm 2 keeps sub-millisecond.
        self.journal.span(
            format!("fast-failover:{failed_ip}"),
            ctx.now().as_nanos(),
            (ctx.now() + self.config.control_latency).as_nanos(),
        );

        if !self.config.auto_recovery {
            return;
        }
        let Some(replacement_ip) = self.pick_replacement(failed_ip) else {
            return;
        };
        let plan = RecoveryPlan::compute(
            &self.ring,
            failed_ip,
            replacement_ip,
            self.config.recovery_groups,
            &self.failed,
        );
        if plan.steps.is_empty() {
            return;
        }
        let task = RecoveryTask {
            failed_node: node,
            plan,
            current: 0,
            phase: RecoveryPhase::WaitingToStart,
        };
        self.tasks.push(task);
        let idx = self.tasks.len() - 1;
        ctx.set_timer(
            self.config.recovery_start_delay,
            self.task_timer(TIMER_RECOVERY_BASE, idx),
        );
    }

    fn on_node_up(&mut self, node: NodeId, _ctx: &mut Context<NetMsg>) {
        if let Some(ip) = self.addr.ip_of(node) {
            self.failed.remove(&ip);
        }
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<NetMsg>) {
        if token >= TIMER_SYNC_BASE {
            let idx = (token - TIMER_SYNC_BASE) as usize;
            if idx < self.tasks.len() {
                self.finish_group_sync(idx, ctx);
            }
        } else if token >= TIMER_RECOVERY_BASE {
            let idx = (token - TIMER_RECOVERY_BASE) as usize;
            if idx < self.tasks.len() {
                self.tasks[idx].phase = RecoveryPhase::Syncing;
                let span = self.journal.begin(
                    format!("recovery:{}", self.tasks[idx].plan.failed_ip),
                    ctx.now().as_nanos(),
                );
                self.recovery_spans.insert(idx, span);
                self.start_group_sync(idx, ctx);
            }
        }
    }

    fn name(&self) -> String {
        "controller".to_string()
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> HashRing {
        let switches: Vec<Ipv4Addr> = (0..4).map(Ipv4Addr::for_switch).collect();
        HashRing::new(switches, 4, 3, 2)
    }

    #[test]
    fn replacement_prefers_unaffected_live_switches() {
        let ring = ring();
        let mut addr = AddressMap::new();
        for i in 0..4 {
            addr.register(NodeId(i), Ipv4Addr::for_switch(i as u32));
        }
        let controller = Controller::new(
            ControllerConfig::default(),
            ring.clone(),
            addr,
            HashMap::new(),
        );
        let failed = Ipv4Addr::for_switch(1);
        let replacement = controller.pick_replacement(failed).unwrap();
        assert_ne!(replacement, failed);
        // With 4 switches and chains of 3, almost every switch is somewhere in
        // the affected set, so the fallback may pick any live switch; it must
        // never pick the failed one.
    }

    #[test]
    fn explicit_replacement_wins() {
        let ring = ring();
        let config = ControllerConfig {
            replacement: Some(Ipv4Addr::for_switch(3)),
            ..Default::default()
        };
        let controller = Controller::new(config, ring, AddressMap::new(), HashMap::new());
        assert_eq!(
            controller.pick_replacement(Ipv4Addr::for_switch(1)),
            Some(Ipv4Addr::for_switch(3))
        );
    }

    #[test]
    fn recovery_phase_initially_unknown() {
        let controller = Controller::new(
            ControllerConfig::default(),
            ring(),
            AddressMap::new(),
            HashMap::new(),
        );
        assert_eq!(controller.recovery_phase(Ipv4Addr::for_switch(1)), None);
        assert!(controller.records().is_empty());
        assert!(controller.failed_switches().is_empty());
    }
}
