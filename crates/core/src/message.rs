//! The message type carried by the simulator for NetChain deployments:
//! data-plane packets plus control-plane (controller ↔ switch) RPCs.

use netchain_sim::Message;
use netchain_switch::kv::ExportedEntry;
use netchain_switch::{FailoverRule, RuleScope};
use netchain_wire::{Ipv4Addr, Key, NetChainPacket, Value};

/// One message on the simulated network.
#[derive(Debug, Clone)]
pub enum NetMsg {
    /// A data-plane NetChain packet (query or reply).
    Data(NetChainPacket),
    /// A control-plane message between the controller and a switch agent.
    /// In the real system these are Thrift RPCs through the switch OS (§7);
    /// in the simulator they travel over the out-of-band control channel.
    Control(ControlMsg),
}

/// Control-plane operations (controller → switch, and switch → controller
/// responses).
#[derive(Debug, Clone)]
pub enum ControlMsg {
    /// Install a failover/recovery rule for packets destined to `failed_ip`.
    InstallRule {
        /// The failed switch whose traffic the rule captures.
        failed_ip: Ipv4Addr,
        /// The rule to install.
        rule: FailoverRule,
    },
    /// Remove a previously installed rule.
    RemoveRule {
        /// The failed switch the rule was keyed on.
        failed_ip: Ipv4Addr,
        /// Priority of the rule to remove.
        priority: u8,
        /// Scope of the rule to remove.
        scope: RuleScope,
    },
    /// Install a key-value entry in the switch's store (the control-plane
    /// part of an `Insert`, §4.1).
    InsertKey {
        /// Key to install.
        key: Key,
        /// Initial value.
        value: Value,
    },
    /// Garbage-collect a deleted key.
    GcKey {
        /// Key to collect.
        key: Key,
    },
    /// Set the session number a switch stamps on writes it sequences
    /// (head replacement, §5.2).
    SetSession {
        /// The new session number.
        session: u64,
    },
    /// Activate or deactivate NetChain processing on the switch
    /// (Algorithm 3 phase 2 activates a replacement switch).
    SetActive {
        /// Whether the switch should process queries addressed to it.
        active: bool,
    },
    /// Ask a switch to export the entries belonging to the given virtual
    /// groups (or all entries if `groups` is `None`).
    ExportRequest {
        /// Virtual groups to export, or `None` for everything.
        groups: Option<Vec<u32>>,
        /// Number of virtual groups used for filtering.
        modulus: u32,
        /// Token echoed in the response so the controller can match it.
        token: u64,
    },
    /// A switch's response to [`ControlMsg::ExportRequest`].
    ExportResponse {
        /// The exported entries.
        entries: Vec<ExportedEntry>,
        /// Token from the request.
        token: u64,
    },
    /// Load entries into a switch's store (state synchronisation onto a
    /// replacement switch).
    ImportEntries {
        /// Entries to import.
        entries: Vec<ExportedEntry>,
    },
}

impl Message for NetMsg {
    fn wire_size(&self) -> usize {
        match self {
            NetMsg::Data(pkt) => pkt.wire_size(),
            // Control messages travel on the management network; their size
            // only matters for rough accounting. Entries dominate.
            NetMsg::Control(msg) => match msg {
                ControlMsg::ExportResponse { entries, .. }
                | ControlMsg::ImportEntries { entries } => 64 + entries.len() * 64,
                ControlMsg::ExportRequest { groups, .. } => {
                    64 + groups.as_ref().map_or(0, |g| g.len() * 4)
                }
                _ => 64,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_wire::{ChainList, OpCode};

    #[test]
    fn wire_sizes_are_sensible() {
        let pkt = NetChainPacket::query(
            Ipv4Addr::for_host(0),
            4000,
            Ipv4Addr::for_switch(0),
            OpCode::Read,
            Key::from_u64(1),
            Value::empty(),
            ChainList::empty(),
            1,
        );
        assert_eq!(NetMsg::Data(pkt.clone()).wire_size(), pkt.wire_size());
        assert_eq!(
            NetMsg::Control(ControlMsg::SetActive { active: true }).wire_size(),
            64
        );
        let entries = vec![
            netchain_switch::kv::ExportedEntry {
                key: Key::from_u64(1),
                value: Value::from_u64(2),
                seq: 1,
                session: 0,
                valid: true,
            };
            10
        ];
        assert_eq!(
            NetMsg::Control(ControlMsg::ImportEntries { entries }).wire_size(),
            64 + 640
        );
    }
}
