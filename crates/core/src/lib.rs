//! # netchain-core
//!
//! The NetChain system proper: everything above the switch data plane and the
//! network substrate.
//!
//! * [`hashring`] — consistent hashing with virtual nodes: partitions the key
//!   space over switches and assigns every key a chain of `f + 1` distinct
//!   switches (§4.1).
//! * [`directory`] — the mapping every client agent keeps from keys to chains
//!   and from switch IPs to simulator nodes.
//! * [`agent`] — the client agent: a sans-IO core that builds query packets
//!   (write queries carry the chain head-to-tail, read queries the reverse
//!   order, §4.2), matches replies, and drives timeouts/retries (§4.3).
//! * [`client`] — simulator nodes wrapping the agent: an open/closed-loop
//!   workload generator and a scripted client for tests and examples.
//! * [`switch_node`] — the simulator adapter that hosts a
//!   [`netchain_switch::NetChainSwitch`] on a topology node and performs
//!   underlay L3 forwarding.
//! * [`controller`] — the network controller (the reconfiguration half of
//!   Vertical Paxos): fast failover (Algorithm 2) and failure recovery with
//!   two-phase atomic switching and virtual groups (Algorithm 3, §5).
//! * [`cluster`] — glue that assembles complete deployments (the Figure 8
//!   testbed or arbitrary spine–leaf fabrics) ready to run experiments on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod client;
pub mod cluster;
pub mod controller;
pub mod directory;
pub mod evidence;
pub mod failplan;
pub mod hashring;
pub mod message;
pub mod switch_node;
pub mod types;

pub use agent::{AgentConfig, AgentCore, AgentStats};
pub use client::{ScriptedClient, WorkloadClient, WorkloadConfig};
pub use cluster::{ClusterConfig, ClusterLayout, NetChainCluster};
pub use controller::{Controller, ControllerConfig};
pub use directory::{AddressMap, ChainDirectory};
pub use evidence::{evidence_op, query_evidence};
pub use failplan::{FailoverPlan, GroupRepair, RecoveryPlan};
pub use hashring::{ChainDescriptor, HashRing};
pub use message::{ControlMsg, NetMsg};
pub use switch_node::SwitchNode;
pub use types::{CompletedQuery, KvOp, NetChainError};
