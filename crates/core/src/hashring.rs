//! Consistent hashing with virtual nodes (§4.1, "data partitioning with
//! consistent hashing").
//!
//! The key space is divided into `V` equal segments — the *virtual nodes*,
//! which are also the *virtual groups* used to stage failure recovery (§5.2).
//! Each virtual node is owned by one physical switch (a seeded permutation
//! spreads ownership evenly), and the chain for a segment is the owner of
//! that segment followed by the owners of the next segments along the ring,
//! skipping duplicates, until `f + 1` *distinct* switches are collected —
//! exactly the assignment rule the paper describes.

use netchain_wire::{Ipv4Addr, Key};
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// The chain of switches responsible for one virtual group, head first.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChainDescriptor {
    /// Switch IPs from head to tail.
    pub switches: Vec<Ipv4Addr>,
}

impl ChainDescriptor {
    /// The head switch (sequences writes).
    pub fn head(&self) -> Ipv4Addr {
        self.switches[0]
    }

    /// The tail switch (serves reads, generates replies).
    pub fn tail(&self) -> Ipv4Addr {
        *self.switches.last().expect("chains are never empty")
    }

    /// Chain length (`f + 1`).
    pub fn len(&self) -> usize {
        self.switches.len()
    }

    /// True if the chain has no switches (never produced by the ring).
    pub fn is_empty(&self) -> bool {
        self.switches.is_empty()
    }

    /// True if `switch` participates in this chain.
    pub fn contains(&self, switch: Ipv4Addr) -> bool {
        self.switches.contains(&switch)
    }

    /// The position of `switch` in the chain, head = 0.
    pub fn position(&self, switch: Ipv4Addr) -> Option<usize> {
        self.switches.iter().position(|&s| s == switch)
    }

    /// The successor of `switch` along the chain (towards the tail).
    pub fn successor(&self, switch: Ipv4Addr) -> Option<Ipv4Addr> {
        let pos = self.position(switch)?;
        self.switches.get(pos + 1).copied()
    }

    /// The predecessor of `switch` along the chain (towards the head).
    pub fn predecessor(&self, switch: Ipv4Addr) -> Option<Ipv4Addr> {
        let pos = self.position(switch)?;
        pos.checked_sub(1).map(|i| self.switches[i])
    }

    /// The chain with `switch` removed (what fast failover degrades to).
    pub fn without(&self, switch: Ipv4Addr) -> ChainDescriptor {
        ChainDescriptor {
            switches: self
                .switches
                .iter()
                .copied()
                .filter(|&s| s != switch)
                .collect(),
        }
    }
}

/// The consistent-hash ring.
#[derive(Debug, Clone)]
pub struct HashRing {
    switches: Vec<Ipv4Addr>,
    /// `owner[v]` = index into `switches` of the owner of virtual node `v`.
    owner: Vec<usize>,
    replication: usize,
}

impl HashRing {
    /// Builds a ring over `switches` with `vnodes_per_switch` virtual nodes
    /// per switch and chains of `replication` (= `f + 1`) distinct switches.
    ///
    /// # Panics
    /// Panics if there are fewer switches than the replication factor, or if
    /// either parameter is zero.
    pub fn new(
        switches: Vec<Ipv4Addr>,
        vnodes_per_switch: usize,
        replication: usize,
        seed: u64,
    ) -> Self {
        assert!(!switches.is_empty(), "a ring needs at least one switch");
        assert!(
            vnodes_per_switch > 0,
            "need at least one virtual node per switch"
        );
        assert!(replication > 0, "replication factor must be at least 1");
        assert!(
            switches.len() >= replication,
            "cannot build chains of {} distinct switches out of {}",
            replication,
            switches.len()
        );
        let total = switches.len() * vnodes_per_switch;
        // Even ownership: each switch owns exactly `vnodes_per_switch` virtual
        // nodes, at positions shuffled by a seeded RNG so neighbouring
        // segments usually belong to different switches.
        let mut owner: Vec<usize> = (0..total).map(|v| v % switches.len()).collect();
        let mut rng = rand_chacha::ChaCha8Rng::seed_from_u64(seed);
        owner.shuffle(&mut rng);
        HashRing {
            switches,
            owner,
            replication,
        }
    }

    /// The physical switches participating in the ring.
    pub fn switches(&self) -> &[Ipv4Addr] {
        &self.switches
    }

    /// Total number of virtual nodes (= virtual groups).
    pub fn num_virtual_nodes(&self) -> usize {
        self.owner.len()
    }

    /// The replication factor (`f + 1`).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The switch owning virtual node `v`.
    pub fn owner_of(&self, vnode: usize) -> Ipv4Addr {
        self.switches[self.owner[vnode % self.owner.len()]]
    }

    /// The virtual group a key belongs to.
    pub fn group_of(&self, key: &Key) -> u32 {
        (key.stable_hash() % self.owner.len() as u64) as u32
    }

    /// The chain (head first) serving virtual group `group`: the owner of the
    /// group's segment plus the owners of subsequent segments, skipping
    /// switches already in the chain, until `f + 1` distinct switches are
    /// found.
    pub fn chain_for_group(&self, group: u32) -> ChainDescriptor {
        let total = self.owner.len();
        let mut switches = Vec::with_capacity(self.replication);
        let mut v = group as usize % total;
        for _ in 0..total {
            let candidate = self.switches[self.owner[v]];
            if !switches.contains(&candidate) {
                switches.push(candidate);
                if switches.len() == self.replication {
                    break;
                }
            }
            v = (v + 1) % total;
        }
        debug_assert_eq!(
            switches.len(),
            self.replication,
            "ring construction guarantees enough distinct switches"
        );
        ChainDescriptor { switches }
    }

    /// The chain serving `key`.
    pub fn chain_for_key(&self, key: &Key) -> ChainDescriptor {
        self.chain_for_group(self.group_of(key))
    }

    /// All virtual groups whose chain includes `switch` — the chains affected
    /// when that switch fails. A switch owning `m` virtual nodes sits in
    /// roughly `m (f + 1)` chains, matching the paper's `m(f+1)/n`-per-switch
    /// accounting.
    pub fn groups_involving(&self, switch: Ipv4Addr) -> Vec<u32> {
        (0..self.owner.len() as u32)
            .filter(|&g| self.chain_for_group(g).contains(switch))
            .collect()
    }

    /// The number of virtual nodes owned by `switch` (load-balance checks).
    pub fn vnodes_owned_by(&self, switch: Ipv4Addr) -> usize {
        let Some(idx) = self.switches.iter().position(|&s| s == switch) else {
            return 0;
        };
        self.owner.iter().filter(|&&o| o == idx).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ips(n: u32) -> Vec<Ipv4Addr> {
        (0..n).map(Ipv4Addr::for_switch).collect()
    }

    #[test]
    fn chains_have_distinct_switches_of_requested_length() {
        let ring = HashRing::new(ips(6), 10, 3, 7);
        assert_eq!(ring.num_virtual_nodes(), 60);
        for g in 0..60 {
            let chain = ring.chain_for_group(g);
            assert_eq!(chain.len(), 3);
            let mut unique = chain.switches.clone();
            unique.sort();
            unique.dedup();
            assert_eq!(unique.len(), 3, "chain switches must be distinct");
        }
    }

    #[test]
    fn ownership_is_perfectly_balanced() {
        let ring = HashRing::new(ips(4), 25, 3, 1);
        for &sw in ring.switches() {
            assert_eq!(ring.vnodes_owned_by(sw), 25);
        }
        assert_eq!(ring.vnodes_owned_by(Ipv4Addr::for_switch(99)), 0);
    }

    #[test]
    fn key_to_chain_is_deterministic_and_stable() {
        let ring = HashRing::new(ips(8), 16, 3, 42);
        let ring2 = HashRing::new(ips(8), 16, 3, 42);
        for i in 0..100u64 {
            let k = Key::from_u64(i);
            assert_eq!(ring.chain_for_key(&k), ring2.chain_for_key(&k));
            assert_eq!(ring.group_of(&k), ring2.group_of(&k));
            assert_eq!(
                ring.chain_for_key(&k),
                ring.chain_for_group(ring.group_of(&k))
            );
        }
    }

    #[test]
    fn different_seeds_give_different_placements() {
        let a = HashRing::new(ips(8), 16, 3, 1);
        let b = HashRing::new(ips(8), 16, 3, 2);
        let differs = (0..128u32).any(|g| a.chain_for_group(g) != b.chain_for_group(g));
        assert!(differs);
    }

    #[test]
    fn chain_descriptor_navigation() {
        let chain = ChainDescriptor {
            switches: vec![
                Ipv4Addr::for_switch(0),
                Ipv4Addr::for_switch(1),
                Ipv4Addr::for_switch(2),
            ],
        };
        assert_eq!(chain.head(), Ipv4Addr::for_switch(0));
        assert_eq!(chain.tail(), Ipv4Addr::for_switch(2));
        assert_eq!(chain.position(Ipv4Addr::for_switch(1)), Some(1));
        assert_eq!(
            chain.successor(Ipv4Addr::for_switch(1)),
            Some(Ipv4Addr::for_switch(2))
        );
        assert_eq!(chain.successor(Ipv4Addr::for_switch(2)), None);
        assert_eq!(
            chain.predecessor(Ipv4Addr::for_switch(1)),
            Some(Ipv4Addr::for_switch(0))
        );
        assert_eq!(chain.predecessor(Ipv4Addr::for_switch(0)), None);
        assert!(chain.contains(Ipv4Addr::for_switch(2)));
        assert!(!chain.contains(Ipv4Addr::for_switch(9)));
        let degraded = chain.without(Ipv4Addr::for_switch(1));
        assert_eq!(degraded.len(), 2);
        assert_eq!(degraded.head(), Ipv4Addr::for_switch(0));
        assert_eq!(degraded.tail(), Ipv4Addr::for_switch(2));
    }

    #[test]
    fn groups_involving_matches_expected_count() {
        // 4 switches, 25 vnodes each, chains of 3: each switch participates in
        // roughly m(f+1) = 75 of the 100 groups.
        let ring = HashRing::new(ips(4), 25, 3, 11);
        for &sw in ring.switches() {
            let affected = ring.groups_involving(sw).len();
            assert!(
                (60..=90).contains(&affected),
                "expected roughly 75 affected groups, got {affected}"
            );
        }
    }

    #[test]
    fn keys_spread_over_groups() {
        let ring = HashRing::new(ips(4), 25, 3, 3);
        let mut seen = std::collections::HashSet::new();
        for i in 0..2000u64 {
            seen.insert(ring.group_of(&Key::from_u64(i)));
        }
        // 2000 keys over 100 groups: essentially every group should be hit.
        assert!(seen.len() > 95, "only {} groups hit", seen.len());
    }

    #[test]
    #[should_panic(expected = "cannot build chains")]
    fn too_few_switches_rejected() {
        HashRing::new(ips(2), 4, 3, 0);
    }
}
