//! The distributed-transaction benchmark of §8.5 / Figure 11.
//!
//! Each transaction needs ten exclusive locks under two-phase locking: one
//! from a small *hot* set whose size is the inverse of the contention index,
//! and nine from a large cold set (a generalisation of the TPC-C new-order
//! transaction, following the benchmark the paper borrows from Calvin and
//! VLL). A client acquires all ten locks one by one with CAS; if any acquire
//! fails the transaction aborts, the already-held locks are released, and the
//! client starts over — exactly the "abort transactions that cannot acquire
//! all locks" behaviour the paper describes as the server-killer under high
//! contention.

use crate::lock::{lock_key, LockClient};
use netchain_core::{AgentConfig, AgentCore, ChainDirectory, KvOp, NetMsg};
use netchain_sim::{Context, Node, NodeId, SimDuration, SimTime, ThroughputSeries, TimerToken};
use netchain_wire::{Key, QueryStatus};
use std::any::Any;

const TIMER_RETRY: TimerToken = 1;
const TIMER_START: TimerToken = 2;

/// Parameters of the transaction workload.
#[derive(Debug, Clone, Copy)]
pub struct TxnWorkload {
    /// Lock namespace (keeps experiments separate).
    pub namespace: u32,
    /// Locks per transaction (the paper uses 10).
    pub locks_per_txn: usize,
    /// Contention index: the inverse of the number of hot items. 1.0 means a
    /// single hot item everyone fights over; 0.001 means 1000 hot items.
    pub contention_index: f64,
    /// Size of the cold item set the other nine locks come from.
    pub cold_items: u64,
    /// When the client starts issuing transactions.
    pub start: SimDuration,
    /// For how long it keeps issuing transactions.
    pub duration: SimDuration,
    /// Bucket width for the committed-transaction throughput series.
    pub throughput_bucket: SimDuration,
}

impl Default for TxnWorkload {
    fn default() -> Self {
        TxnWorkload {
            namespace: 1,
            locks_per_txn: 10,
            contention_index: 0.001,
            cold_items: 100_000,
            start: SimDuration::ZERO,
            duration: SimDuration::from_secs(1),
            throughput_bucket: SimDuration::from_secs(1),
        }
    }
}

impl TxnWorkload {
    /// Number of hot items implied by the contention index.
    pub fn hot_items(&self) -> u64 {
        (1.0 / self.contention_index.max(1e-9)).round().max(1.0) as u64
    }

    /// All lock keys this workload can touch (hot items first, then cold) —
    /// used to pre-install them in the store.
    pub fn all_lock_keys(&self) -> Vec<Key> {
        let hot = self.hot_items();
        (0..hot + self.cold_items)
            .map(|i| lock_key(self.namespace, i))
            .collect()
    }

    fn end(&self) -> SimTime {
        SimTime::ZERO + self.start + self.duration
    }
}

/// Counters kept by a transaction client.
#[derive(Debug, Clone, Copy, Default)]
pub struct TxnStats {
    /// Transactions that acquired all their locks and released them.
    pub committed: u64,
    /// Transactions aborted because a lock acquire failed.
    pub aborted: u64,
    /// Individual lock acquisitions attempted.
    pub lock_attempts: u64,
    /// Lock acquisitions that found the lock held.
    pub lock_conflicts: u64,
}

#[derive(Debug)]
enum TxnState {
    Idle,
    Acquiring {
        locks: Vec<Key>,
        next: usize,
        held: Vec<Key>,
    },
    Releasing {
        to_release: Vec<Key>,
        next: usize,
        aborted: bool,
    },
}

/// A closed-loop two-phase-locking transaction client using NetChain as its
/// lock server.
pub struct TxnClient {
    agent: AgentCore,
    gateway: NodeId,
    lock_client: LockClient,
    workload: TxnWorkload,
    state: TxnState,
    stats: TxnStats,
    throughput: ThroughputSeries,
}

impl TxnClient {
    /// Creates a transaction client.
    pub fn new(
        agent_config: AgentConfig,
        directory: ChainDirectory,
        gateway: NodeId,
        client_id: u64,
        workload: TxnWorkload,
    ) -> Self {
        TxnClient {
            agent: AgentCore::new(agent_config, directory),
            gateway,
            lock_client: LockClient::new(client_id),
            workload,
            state: TxnState::Idle,
            stats: TxnStats::default(),
            throughput: ThroughputSeries::new(workload.throughput_bucket),
        }
    }

    /// Transaction statistics.
    pub fn stats(&self) -> TxnStats {
        self.stats
    }

    /// Committed-transaction throughput series.
    pub fn throughput(&self) -> &ThroughputSeries {
        &self.throughput
    }

    fn in_window(&self, now: SimTime) -> bool {
        now >= SimTime::ZERO + self.workload.start && now < self.workload.end()
    }

    fn pick_lock_set(&self, ctx: &mut Context<NetMsg>) -> Vec<Key> {
        let hot_items = self.workload.hot_items();
        let mut ids = Vec::with_capacity(self.workload.locks_per_txn);
        // One hot lock...
        ids.push(ctx.random_below(hot_items));
        // ...and the rest from the cold set (offset past the hot ids).
        while ids.len() < self.workload.locks_per_txn {
            let cold = hot_items + ctx.random_below(self.workload.cold_items.max(1));
            if !ids.contains(&cold) {
                ids.push(cold);
            }
        }
        ids.into_iter()
            .map(|id| lock_key(self.workload.namespace, id))
            .collect()
    }

    fn send_op(&mut self, op: KvOp, ctx: &mut Context<NetMsg>) {
        let (_, pkt) = self.agent.begin(ctx.now(), op);
        ctx.send(self.gateway, NetMsg::Data(pkt));
        ctx.set_timer(self.agent.config().timeout, TIMER_RETRY);
    }

    fn start_txn(&mut self, ctx: &mut Context<NetMsg>) {
        if !self.in_window(ctx.now()) {
            self.state = TxnState::Idle;
            return;
        }
        let locks = self.pick_lock_set(ctx);
        let first = locks[0];
        self.state = TxnState::Acquiring {
            locks,
            next: 0,
            held: Vec::new(),
        };
        self.stats.lock_attempts += 1;
        let op = self.lock_client.acquire(first);
        self.send_op(op, ctx);
    }

    fn begin_release(&mut self, held: Vec<Key>, aborted: bool, ctx: &mut Context<NetMsg>) {
        if held.is_empty() {
            self.finish_txn(aborted, ctx);
            return;
        }
        let first = held[0];
        self.state = TxnState::Releasing {
            to_release: held,
            next: 0,
            aborted,
        };
        let op = self.lock_client.release(first);
        self.send_op(op, ctx);
    }

    fn finish_txn(&mut self, aborted: bool, ctx: &mut Context<NetMsg>) {
        if aborted {
            self.stats.aborted += 1;
        } else {
            self.stats.committed += 1;
            self.throughput.record(ctx.now());
        }
        self.start_txn(ctx);
    }

    fn on_lock_reply(&mut self, status: QueryStatus, ctx: &mut Context<NetMsg>) {
        let state = std::mem::replace(&mut self.state, TxnState::Idle);
        match state {
            TxnState::Acquiring {
                locks,
                next,
                mut held,
            } => {
                if status == QueryStatus::Ok {
                    held.push(locks[next]);
                    let next = next + 1;
                    if next == locks.len() {
                        // Growing phase complete: the transaction's work would
                        // happen here; shrink immediately, as in the paper.
                        self.begin_release(held, false, ctx);
                    } else {
                        self.state = TxnState::Acquiring {
                            locks: locks.clone(),
                            next,
                            held,
                        };
                        self.stats.lock_attempts += 1;
                        let op = self.lock_client.acquire(locks[next]);
                        self.send_op(op, ctx);
                    }
                } else {
                    // Conflict (or missing lock key): abort and release.
                    self.stats.lock_conflicts += 1;
                    self.begin_release(held, true, ctx);
                }
            }
            TxnState::Releasing {
                to_release,
                next,
                aborted,
            } => {
                let next = next + 1;
                if next >= to_release.len() {
                    self.finish_txn(aborted, ctx);
                } else {
                    let key = to_release[next];
                    self.state = TxnState::Releasing {
                        to_release,
                        next,
                        aborted,
                    };
                    let op = self.lock_client.release(key);
                    self.send_op(op, ctx);
                }
            }
            TxnState::Idle => {}
        }
    }
}

impl Node<NetMsg> for TxnClient {
    fn on_start(&mut self, ctx: &mut Context<NetMsg>) {
        ctx.set_timer(self.workload.start, TIMER_START);
    }

    fn on_timer(&mut self, token: TimerToken, ctx: &mut Context<NetMsg>) {
        match token {
            TIMER_START => {
                if matches!(self.state, TxnState::Idle) {
                    self.start_txn(ctx);
                }
            }
            TIMER_RETRY => {
                let outcome = self.agent.poll_retries(ctx.now());
                for pkt in outcome.retransmit {
                    ctx.send(self.gateway, NetMsg::Data(pkt));
                }
                // Abandoned lock operations abort the transaction outright.
                if !outcome.abandoned.is_empty() {
                    let held = match std::mem::replace(&mut self.state, TxnState::Idle) {
                        TxnState::Acquiring { held, .. } => held,
                        TxnState::Releasing { .. } | TxnState::Idle => Vec::new(),
                    };
                    self.begin_release(held, true, ctx);
                }
                if self.agent.outstanding() > 0 {
                    ctx.set_timer(self.agent.config().timeout, TIMER_RETRY);
                }
            }
            _ => {}
        }
    }

    fn on_message(&mut self, _from: NodeId, msg: NetMsg, ctx: &mut Context<NetMsg>) {
        let NetMsg::Data(pkt) = msg else { return };
        if let Some(done) = self.agent.on_reply(ctx.now(), &pkt) {
            let status = done.status.unwrap_or(QueryStatus::Declined);
            self.on_lock_reply(status, ctx);
        }
    }

    fn name(&self) -> String {
        format!("txn-client {}", self.lock_client.client_id())
    }

    fn as_any(&self) -> &dyn Any {
        self
    }

    fn as_any_mut(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hot_item_count_follows_contention_index() {
        let mut w = TxnWorkload {
            contention_index: 1.0,
            ..Default::default()
        };
        assert_eq!(w.hot_items(), 1);
        w.contention_index = 0.001;
        assert_eq!(w.hot_items(), 1000);
        w.contention_index = 0.01;
        assert_eq!(w.hot_items(), 100);
    }

    #[test]
    fn all_lock_keys_covers_hot_and_cold() {
        let w = TxnWorkload {
            contention_index: 0.5,
            cold_items: 10,
            ..Default::default()
        };
        let keys = w.all_lock_keys();
        assert_eq!(keys.len(), 2 + 10);
        // Keys are distinct.
        let mut sorted = keys.clone();
        sorted.sort();
        sorted.dedup();
        assert_eq!(sorted.len(), keys.len());
    }
}
