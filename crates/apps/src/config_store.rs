//! A small typed configuration store: named parameters mapped onto NetChain
//! keys — the "configuration management" use case of coordination services.

use netchain_core::KvOp;
use netchain_wire::{Key, Value};

/// A namespaced configuration store facade. It owns no transport — it builds
/// operations for whatever client issues them (simulated, loopback or test)
/// and decodes the returned values.
#[derive(Debug, Clone)]
pub struct ConfigStore {
    namespace: String,
}

impl ConfigStore {
    /// Creates a store under `namespace` (e.g. `"cluster-a"`).
    pub fn new(namespace: impl Into<String>) -> Self {
        ConfigStore {
            namespace: namespace.into(),
        }
    }

    /// The key a parameter name maps to.
    pub fn key_for(&self, name: &str) -> Key {
        Key::from_name(&format!("{}/{}", self.namespace, name))
    }

    /// Operation reading parameter `name`.
    pub fn get(&self, name: &str) -> KvOp {
        KvOp::Read(self.key_for(name))
    }

    /// Operation setting parameter `name` to a string value.
    ///
    /// # Panics
    /// Panics if the encoded value exceeds the maximum value size — callers
    /// own the size budget for configuration strings.
    pub fn set_str(&self, name: &str, value: &str) -> KvOp {
        let value = Value::new(value.as_bytes().to_vec())
            .expect("configuration values must fit the value-size limit");
        KvOp::Write(self.key_for(name), value)
    }

    /// Operation setting parameter `name` to an integer value.
    pub fn set_u64(&self, name: &str, value: u64) -> KvOp {
        KvOp::Write(self.key_for(name), Value::from_u64(value))
    }

    /// Operation deleting parameter `name`.
    pub fn unset(&self, name: &str) -> KvOp {
        KvOp::Delete(self.key_for(name))
    }

    /// Decodes a returned value as a string.
    pub fn decode_str(value: &Value) -> Option<String> {
        String::from_utf8(value.as_bytes().to_vec()).ok()
    }

    /// Decodes a returned value as an integer.
    pub fn decode_u64(value: &Value) -> Option<u64> {
        value.as_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_map_to_stable_distinct_keys() {
        let store = ConfigStore::new("cluster-a");
        assert_eq!(store.key_for("timeout"), store.key_for("timeout"));
        assert_ne!(store.key_for("timeout"), store.key_for("retries"));
        let other = ConfigStore::new("cluster-b");
        assert_ne!(store.key_for("timeout"), other.key_for("timeout"));
    }

    #[test]
    fn ops_roundtrip_values() {
        let store = ConfigStore::new("ns");
        match store.set_str("mode", "fast") {
            KvOp::Write(_, v) => assert_eq!(ConfigStore::decode_str(&v).as_deref(), Some("fast")),
            other => panic!("unexpected {other:?}"),
        }
        match store.set_u64("replicas", 3) {
            KvOp::Write(_, v) => assert_eq!(ConfigStore::decode_u64(&v), Some(3)),
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(store.get("mode"), KvOp::Read(_)));
        assert!(matches!(store.unset("mode"), KvOp::Delete(_)));
    }
}
