//! Exclusive locks on top of the NetChain CAS primitive (§8.5).
//!
//! A lock is a key whose 8-byte value holds the current owner's client id,
//! with 0 meaning "free". Acquiring is `CAS(expected = 0, new = client_id)`;
//! releasing is `CAS(expected = client_id, new = 0)`, so a lock can only be
//! released by the client that owns it — exactly the semantics the paper
//! implements with the Tofino CAS primitive.

use netchain_core::KvOp;
use netchain_wire::{Key, QueryStatus};

/// The key used for lock number `lock_id` in namespace `namespace`.
///
/// Namespacing keeps the hot/cold lock sets of different experiments from
/// colliding with ordinary configuration keys.
pub fn lock_key(namespace: u32, lock_id: u64) -> Key {
    let mut bytes = [0u8; 16];
    bytes[0..4].copy_from_slice(b"lck:");
    bytes[4..8].copy_from_slice(&namespace.to_be_bytes());
    bytes[8..16].copy_from_slice(&lock_id.to_be_bytes());
    Key::from_bytes(bytes)
}

/// The result of a lock operation, decoded from a CAS reply.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The lock was acquired (or released).
    Acquired,
    /// The lock is held by the returned owner.
    Busy {
        /// Client id of the current holder (0 if unknown).
        holder: u64,
    },
    /// The lock key does not exist (not pre-installed).
    Missing,
}

/// A small sans-IO helper that builds lock operations for one client and
/// interprets the replies. The actual transport is whatever issues the
/// [`KvOp`]s — the simulated agent, the UDP loopback agent, or a test.
#[derive(Debug, Clone, Copy)]
pub struct LockClient {
    client_id: u64,
}

impl LockClient {
    /// Creates a lock client with a non-zero client id.
    ///
    /// # Panics
    /// Panics if `client_id` is zero (zero encodes "free").
    pub fn new(client_id: u64) -> Self {
        assert!(client_id != 0, "client id 0 is reserved for the free state");
        LockClient { client_id }
    }

    /// This client's id.
    pub fn client_id(&self) -> u64 {
        self.client_id
    }

    /// The operation that tries to acquire `key`.
    pub fn acquire(&self, key: Key) -> KvOp {
        KvOp::Cas {
            key,
            expected: 0,
            new: self.client_id,
        }
    }

    /// The operation that releases `key` (only succeeds if this client holds
    /// it).
    pub fn release(&self, key: Key) -> KvOp {
        KvOp::Cas {
            key,
            expected: self.client_id,
            new: 0,
        }
    }

    /// Decodes the reply to an acquire/release CAS.
    pub fn decode(&self, status: QueryStatus, value: Option<u64>) -> LockOutcome {
        match status {
            QueryStatus::Ok => LockOutcome::Acquired,
            QueryStatus::CasFailed => LockOutcome::Busy {
                holder: value.unwrap_or(0),
            },
            QueryStatus::NotFound => LockOutcome::Missing,
            _ => LockOutcome::Busy { holder: 0 },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lock_keys_are_distinct_per_namespace_and_id() {
        assert_ne!(lock_key(0, 1), lock_key(0, 2));
        assert_ne!(lock_key(0, 1), lock_key(1, 1));
        assert_eq!(lock_key(3, 9), lock_key(3, 9));
    }

    #[test]
    fn acquire_and_release_build_the_right_cas() {
        let client = LockClient::new(42);
        let key = lock_key(0, 5);
        match client.acquire(key) {
            KvOp::Cas {
                expected,
                new,
                key: k,
            } => {
                assert_eq!((expected, new), (0, 42));
                assert_eq!(k, key);
            }
            other => panic!("unexpected op {other:?}"),
        }
        match client.release(key) {
            KvOp::Cas { expected, new, .. } => assert_eq!((expected, new), (42, 0)),
            other => panic!("unexpected op {other:?}"),
        }
    }

    #[test]
    fn decode_outcomes() {
        let client = LockClient::new(7);
        assert_eq!(client.decode(QueryStatus::Ok, None), LockOutcome::Acquired);
        assert_eq!(
            client.decode(QueryStatus::CasFailed, Some(9)),
            LockOutcome::Busy { holder: 9 }
        );
        assert_eq!(
            client.decode(QueryStatus::NotFound, None),
            LockOutcome::Missing
        );
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn zero_client_id_rejected() {
        LockClient::new(0);
    }
}
