//! # netchain-apps
//!
//! Coordination applications built on the NetChain key-value API — the use
//! cases the paper motivates in §1 and evaluates in §8.5:
//!
//! * [`lock`] — exclusive locks built from the switch compare-and-swap
//!   primitive: a lock is a key whose value is the holder's client id
//!   (0 = free), acquired and released with CAS.
//! * [`twopl`] — the distributed-transaction benchmark of Figure 11: each
//!   transaction acquires ten locks under two-phase locking, one drawn from a
//!   small hot set controlled by the *contention index* and nine from a large
//!   cold set (a generalisation of TPC-C new-order).
//! * [`config_store`] — a small typed configuration store (named parameters
//!   mapped onto keys), the "configuration management" use case.
//! * [`barrier`] — distributed barriers built from a CAS-incremented counter.
//! * [`workload`] — key-popularity distributions and op-mix helpers shared by
//!   the experiment harness.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod config_store;
pub mod lock;
pub mod twopl;
pub mod workload;

pub use barrier::Barrier;
pub use config_store::ConfigStore;
pub use lock::{lock_key, LockClient, LockOutcome};
pub use twopl::{TxnClient, TxnStats, TxnWorkload};
pub use workload::{KeyDistribution, OpMix};
