//! Workload-shaping helpers shared by the experiment harness: key popularity
//! distributions and read/write mixes.

use netchain_wire::Key;

/// How keys are drawn from the key space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KeyDistribution {
    /// Every key equally likely.
    Uniform {
        /// Number of keys.
        keys: u64,
    },
    /// Zipfian popularity with the given skew (θ ≈ 0.99 is the YCSB default).
    /// Coordination workloads are typically highly skewed — a few hot
    /// configuration entries and locks.
    Zipf {
        /// Number of keys.
        keys: u64,
        /// Skew parameter (larger = more skew).
        theta: f64,
    },
}

impl KeyDistribution {
    /// Number of distinct keys in the space.
    pub fn num_keys(&self) -> u64 {
        match *self {
            KeyDistribution::Uniform { keys } | KeyDistribution::Zipf { keys, .. } => keys,
        }
    }

    /// Draws a key index from the distribution given two uniform `[0,1)`
    /// samples (callers supply randomness so simulations stay deterministic).
    pub fn sample(&self, u: f64) -> u64 {
        match *self {
            KeyDistribution::Uniform { keys } => {
                ((u * keys as f64) as u64).min(keys.saturating_sub(1))
            }
            KeyDistribution::Zipf { keys, theta } => {
                // Inverse-CDF approximation of a Zipf distribution via the
                // bounded Pareto transform. Accurate enough for workload
                // shaping; exactness is not required.
                let n = keys as f64;
                let s = 1.0 - theta.clamp(0.0, 0.999_999);
                let x = ((n.powf(s) - 1.0) * u + 1.0).powf(1.0 / s);
                (x as u64).clamp(1, keys) - 1
            }
        }
    }

    /// Draws a [`Key`] from the distribution.
    pub fn sample_key(&self, u: f64) -> Key {
        Key::from_u64(self.sample(u))
    }
}

/// A read/write operation mix.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Fraction of operations that are writes, in `[0, 1]`.
    pub write_ratio: f64,
}

impl OpMix {
    /// A read-only mix.
    pub fn read_only() -> Self {
        OpMix { write_ratio: 0.0 }
    }

    /// A write-only mix.
    pub fn write_only() -> Self {
        OpMix { write_ratio: 1.0 }
    }

    /// The paper's default mix: 1 % writes.
    pub fn default_one_percent() -> Self {
        OpMix { write_ratio: 0.01 }
    }

    /// Decides whether an operation is a write given a uniform sample.
    pub fn is_write(&self, u: f64) -> bool {
        u < self.write_ratio
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_sampling_stays_in_range() {
        let dist = KeyDistribution::Uniform { keys: 100 };
        assert_eq!(dist.num_keys(), 100);
        for i in 0..100 {
            let u = i as f64 / 100.0;
            assert!(dist.sample(u) < 100);
        }
        assert_eq!(dist.sample(0.0), 0);
        assert_eq!(dist.sample(0.999), 99);
    }

    #[test]
    fn zipf_is_skewed_towards_small_indices() {
        let dist = KeyDistribution::Zipf {
            keys: 1000,
            theta: 0.99,
        };
        // Low u values map to the most popular (smallest) keys.
        assert!(dist.sample(0.01) < dist.sample(0.99));
        let mut low = 0;
        for i in 0..1000 {
            let u = (i as f64 + 0.5) / 1000.0;
            if dist.sample(u) < 10 {
                low += 1;
            }
        }
        assert!(
            low > 300,
            "a heavily skewed zipf should hit the top-10 keys often, got {low}/1000"
        );
        assert!(dist.sample(0.999_999) < 1000);
    }

    #[test]
    fn op_mix_thresholds() {
        assert!(!OpMix::read_only().is_write(0.0));
        assert!(OpMix::write_only().is_write(0.999));
        let mix = OpMix::default_one_percent();
        assert!(mix.is_write(0.005));
        assert!(!mix.is_write(0.02));
    }

    #[test]
    fn sample_key_matches_sample() {
        let dist = KeyDistribution::Uniform { keys: 10 };
        assert_eq!(dist.sample_key(0.35), Key::from_u64(dist.sample(0.35)));
    }
}
