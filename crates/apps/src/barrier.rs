//! Distributed barriers built from a CAS-incremented counter key.
//!
//! Each participant atomically increments the counter with a CAS
//! (read-expect-increment); the barrier is passed when the counter reaches the
//! participant count. Coordination services expose exactly this pattern, and
//! it exercises the CAS retry loop under contention.

use netchain_core::KvOp;
use netchain_wire::{Key, QueryStatus};

/// A barrier over `parties` participants using the given key.
#[derive(Debug, Clone, Copy)]
pub struct Barrier {
    key: Key,
    parties: u64,
}

/// What a participant should do after a CAS attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BarrierStep {
    /// The increment succeeded; wait (poll) until the counter reaches the
    /// participant count.
    Arrived {
        /// The counter value after this participant's increment.
        count: u64,
    },
    /// The CAS lost a race; retry with the returned current value.
    Retry {
        /// The value currently stored.
        current: u64,
    },
    /// The barrier key is not installed.
    Missing,
}

impl Barrier {
    /// Creates a barrier on `name` for `parties` participants.
    pub fn new(name: &str, parties: u64) -> Self {
        Barrier {
            key: Key::from_name(&format!("barrier/{name}")),
            parties,
        }
    }

    /// The underlying key (must be pre-installed with value 0).
    pub fn key(&self) -> Key {
        self.key
    }

    /// Number of participants.
    pub fn parties(&self) -> u64 {
        self.parties
    }

    /// The CAS that registers arrival given the last observed counter value.
    pub fn arrive_op(&self, observed: u64) -> KvOp {
        KvOp::Cas {
            key: self.key,
            expected: observed,
            new: observed + 1,
        }
    }

    /// The read used to poll the counter while waiting for stragglers.
    pub fn poll_op(&self) -> KvOp {
        KvOp::Read(self.key)
    }

    /// Decodes the reply to an [`Barrier::arrive_op`].
    pub fn decode_arrival(
        &self,
        status: QueryStatus,
        value: Option<u64>,
        attempted: u64,
    ) -> BarrierStep {
        match status {
            QueryStatus::Ok => BarrierStep::Arrived {
                count: attempted + 1,
            },
            QueryStatus::CasFailed => BarrierStep::Retry {
                current: value.unwrap_or(0),
            },
            QueryStatus::NotFound => BarrierStep::Missing,
            _ => BarrierStep::Retry { current: attempted },
        }
    }

    /// True once the observed counter value opens the barrier.
    pub fn is_open(&self, observed: u64) -> bool {
        observed >= self.parties
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arrive_and_poll_ops() {
        let barrier = Barrier::new("epoch-1", 3);
        match barrier.arrive_op(2) {
            KvOp::Cas { expected, new, key } => {
                assert_eq!((expected, new), (2, 3));
                assert_eq!(key, barrier.key());
            }
            other => panic!("unexpected {other:?}"),
        }
        assert!(matches!(barrier.poll_op(), KvOp::Read(_)));
        assert_eq!(barrier.parties(), 3);
    }

    #[test]
    fn decode_and_open() {
        let barrier = Barrier::new("b", 2);
        assert_eq!(
            barrier.decode_arrival(QueryStatus::Ok, None, 0),
            BarrierStep::Arrived { count: 1 }
        );
        assert_eq!(
            barrier.decode_arrival(QueryStatus::CasFailed, Some(1), 0),
            BarrierStep::Retry { current: 1 }
        );
        assert_eq!(
            barrier.decode_arrival(QueryStatus::NotFound, None, 0),
            BarrierStep::Missing
        );
        assert!(!barrier.is_open(1));
        assert!(barrier.is_open(2));
    }

    #[test]
    fn distinct_barriers_use_distinct_keys() {
        assert_ne!(Barrier::new("a", 2).key(), Barrier::new("b", 2).key());
    }
}
