//! End-to-end tests of the threaded, live-controlled fabric: a failure-free
//! run and a full kill → failover → repair run, with the closed loop, the
//! retry path, and the slice accounting all real.

use netchain_fabric::{FabricConfig, WorkloadSpec};
use netchain_livectl::{run_live_controlled, run_live_observed, FaultScript, LiveConfig};
use netchain_telemetry::{WindowChannel, WindowRegistry};
use netchain_wire::Ipv4Addr;
use std::time::Duration;

fn small_fabric() -> FabricConfig {
    FabricConfig {
        num_switches: 4,
        vnodes_per_switch: 8,
        ring_capacity: 256,
        ..FabricConfig::new(2)
    }
    .with_spares(1)
}

#[test]
fn live_run_without_faults_completes_cleanly() {
    let mut config = LiveConfig::new(
        small_fabric(),
        WorkloadSpec::mixed(128, 0, 60, 30),
        Duration::from_millis(300),
    );
    // Nothing drops in a failure-free run, so the retransmission timer only
    // measures scheduling noise; keep it out of the way (one core may park a
    // thread for milliseconds).
    config.retry_timeout = Duration::from_millis(200);
    let report = run_live_controlled(config);
    assert!(report.completed_ops > 0, "the run must make progress");
    assert!(report.timeline.is_none());
    let slice_total: u64 = report.slices.iter().sum();
    assert_eq!(
        slice_total, report.completed_ops,
        "every completion lands in exactly one slice"
    );
    for client in &report.clients {
        assert_eq!(client.version_regressions, 0);
        assert_eq!(client.abandoned, 0);
    }
    assert_eq!(report.total_unroutable(), 0);
    assert_eq!(report.total_blocked(), 0);
    // Latency is always recorded (wall-clock, via the timed client API).
    assert_eq!(report.latency.count(), report.completed_ops);
    assert!(report.latency.quantiles().p999_ns >= report.latency.quantiles().p50_ns);
    // Tracing was off, so no trace fragments were produced.
    assert!(report.traces.is_empty());
    // A healthy symmetric run never trips the gray-failure monitor.
    assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
    assert!(report.ops_journal.instants().is_empty());
}

#[test]
fn observed_run_fills_the_shared_windows() {
    let mut config = LiveConfig::new(
        small_fabric(),
        WorkloadSpec::mixed(128, 0, 60, 30),
        Duration::from_millis(300),
    );
    config.retry_timeout = Duration::from_millis(200);
    let windows = WindowRegistry::new(2, 64, config.slice);
    let report = run_live_observed(config, windows.clone());
    assert!(report.completed_ops > 0);
    assert!(report.anomalies.is_empty());
    // Every reply a shard produced was recorded into its rolling window
    // (the run is far shorter than the 64-slice retention, so nothing has
    // rotated out).
    let mut window_ops = 0u64;
    let mut peak_depth = 0u64;
    for shard in 0..2 {
        for slice in 0..64 {
            if let Some(c) = windows.window(shard).read(slice) {
                window_ops += c[WindowChannel::Ops as usize];
                peak_depth = peak_depth.max(c[WindowChannel::QueueDepth as usize]);
            }
        }
    }
    let shard_replies: u64 = report.shards.iter().map(|s| s.replies).sum();
    assert_eq!(window_ops, shard_replies);
    assert!(peak_depth > 0, "busy bursts must record a queue depth");
}

#[test]
fn scripted_failure_fails_over_and_repairs_live() {
    let script = FaultScript {
        victim: Ipv4Addr::for_switch(1),
        kill_at: Duration::from_millis(250),
        failover_delay: Duration::from_millis(60),
        recovery_delay: Duration::from_millis(120),
        sync_duration: Duration::from_millis(240),
        recovery_groups: Some(8),
        replacement: None, // the spare
    };
    let config = LiveConfig::new(
        small_fabric().with_trace(netchain_telemetry::TraceConfig::sampled(4, 2048)),
        WorkloadSpec::mixed(128, 0, 50, 50),
        Duration::from_millis(1_100),
    )
    .with_script(script);
    let report = run_live_controlled(config);
    let timeline = report.timeline.as_ref().expect("a script ran");

    // The controller went through every phase, in order.
    assert!(timeline.killed_at >= script.kill_at);
    assert!(timeline.failover_installed_at >= timeline.failover_started_at);
    assert!(timeline.repair_started_at >= timeline.failover_installed_at);
    assert!(timeline.repair_finished_at >= timeline.repair_started_at);
    assert_eq!(timeline.groups_repaired, 8);
    assert_eq!(timeline.group_activations.len(), 8);

    // The dataplane kept serving: ops completed, none were permanently lost,
    // and consistency held across failover and repair.
    assert!(report.completed_ops > 0);
    assert_eq!(report.total_abandoned(), 0, "retries must cover every drop");
    for client in &report.clients {
        assert_eq!(client.version_regressions, 0);
    }
    // The failure was actually felt (queries to the dead switch were lost
    // until rules arrived, so clients retried), and repair actually blocked
    // (some queries hit a block rule).
    assert!(report.total_retries() > 0, "the kill must cost retries");
    let unroutable: u64 = report.shards.iter().map(|s| s.unroutable).sum();
    assert!(
        unroutable > 0,
        "pre-failover queries to the victim are lost"
    );

    // Repair actually blocked traffic group by group (block rules were hit).
    let blocked: u64 = report.shards.iter().map(|s| s.blocked).sum();
    assert!(blocked > 0, "repair must block some in-window queries");
    // Post-repair throughput recovers: the mean rate in the last 200 ms is
    // at least half the pre-failure mean (a loose, machine-independent
    // sanity bound; the experiment reports the real curves). Recovery with
    // zero abandoned ops also proves the spare took over: writes whose
    // repaired chain includes it cannot complete otherwise.
    let pre = report.mean_rate(Duration::from_millis(20), script.kill_at);
    let post = report.mean_rate(Duration::from_millis(880), Duration::from_millis(1_080));
    assert!(
        post > pre * 0.5,
        "throughput must recover after repair: pre={pre:.0} post={post:.0}"
    );

    // Telemetry rode along: real latency quantiles, sampled per-hop traces
    // (client issue hop → chain hops → client reply hop), and a journal
    // whose spans mirror the timeline.
    assert_eq!(report.latency.count(), report.completed_ops);
    assert!(!report.traces.is_empty(), "1/16 sampling must catch traces");
    let summary = report.trace_summary();
    let path = summary.dominant_path().expect("some complete path");
    assert!(path.len() >= 3, "client + at least one switch + client");
    let journal = timeline.journal();
    let failover = journal.find_span("fast-failover").expect("span recorded");
    assert_eq!(
        failover.duration_ns(),
        Some(timeline.failover_install_time.as_nanos() as u64)
    );
    assert_eq!(
        journal
            .instants()
            .iter()
            .filter(|i| i.name.starts_with("activate-group:"))
            .count(),
        8
    );
    // A scripted fail-stop is not a gray failure: the dip is global (every
    // shard blocks/retries together), so the peer-median detector is silent.
    assert!(report.anomalies.is_empty(), "{:?}", report.anomalies);
}
