//! Differential test across a scripted failure: the live fabric (driven
//! deterministically through [`ReplayFabric`]) and the discrete-event
//! simulator (driven by its own [`Controller`] node) execute the *same*
//! scripted ops in three phases — healthy, after fast failover, and after
//! full chain repair — with the same planners, the same rules and the same
//! session numbers. The reply streams of every phase and the final per-
//! switch KV state (including the replacement and the frozen victim) must
//! match entry for entry.
//!
//! This extends `crates/fabric/tests/differential_sim.rs` (the failure-free
//! differential) to the whole controller path.

use netchain_core::{ClusterConfig, ControllerConfig, KvOp, NetChainCluster};
use netchain_livectl::ReplayFabric;
use netchain_sim::{SimConfig, SimDuration};
use netchain_switch::kv::ExportedEntry;
use netchain_switch::PipelineConfig;
use netchain_wire::{Ipv4Addr, Key, QueryStatus, Value};

const VICTIM: u32 = 1;
const REPLACEMENT: u32 = 3;
const RECOVERY_GROUPS: u32 = 5;

fn keys() -> Vec<Key> {
    (0..10)
        .map(|i| Key::from_name(&format!("dfail/key{i}")))
        .collect()
}

/// Phase A: healthy traffic — writes, reads, CAS, a delete.
fn script_healthy() -> Vec<KvOp> {
    let keys = keys();
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate() {
        ops.push(KvOp::Write(k, Value::from_u64(100 + i as u64)));
    }
    for &k in &keys {
        ops.push(KvOp::Read(k));
    }
    ops.push(KvOp::Cas {
        key: keys[0],
        expected: 100,
        new: 555,
    });
    ops.push(KvOp::Delete(keys[9]));
    ops.push(KvOp::Read(Key::from_name("dfail/ghost")));
    ops
}

/// Phase B: during the failover window (chains run one switch short; new
/// heads stamp bumped sessions).
fn script_failover() -> Vec<KvOp> {
    let keys = keys();
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate().take(8) {
        ops.push(KvOp::Write(k, Value::from_u64(200 + i as u64)));
        ops.push(KvOp::Read(k));
    }
    ops.push(KvOp::Cas {
        key: keys[0],
        expected: 555,
        new: 777,
    });
    ops
}

/// Phase C: after full chain repair (traffic to the victim redirects to the
/// replacement).
fn script_repaired() -> Vec<KvOp> {
    let keys = keys();
    let mut ops = Vec::new();
    for (i, &k) in keys.iter().enumerate().take(8) {
        ops.push(KvOp::Write(k, Value::from_u64(300 + i as u64)));
        ops.push(KvOp::Read(k));
    }
    ops.push(KvOp::Read(keys[8]));
    ops
}

fn kv_snapshot(entries: impl IntoIterator<Item = ExportedEntry>) -> Vec<ExportedEntry> {
    let mut v: Vec<ExportedEntry> = entries.into_iter().collect();
    v.sort_by_key(|e| e.key);
    v
}

#[test]
fn live_fabric_matches_simulator_across_failover_and_repair() {
    let pipeline = PipelineConfig::tiny(256);
    // Timeline (sim side): fail at 50 ms, detected at 60 ms, failover rules
    // ~61 ms, phase B from 80 ms, recovery 260 ms → ~370 ms (5 groups ×
    // 20 ms + control RTTs), phase C from 500 ms.
    let fail_at = SimDuration::from_millis(50);
    let config = ClusterConfig {
        pipeline,
        ring_switches: Some(3),
        sim: SimConfig::default().with_detection_delay(SimDuration::from_millis(10)),
        controller: ControllerConfig {
            recovery_start_delay: SimDuration::from_millis(200),
            total_sync_duration: SimDuration::from_millis(100),
            replacement: Some(Ipv4Addr::for_switch(REPLACEMENT)),
            recovery_groups: Some(RECOVERY_GROUPS),
            ..ControllerConfig::default()
        },
        ..ClusterConfig::default()
    };

    // ---- Simulator execution ----
    let mut cluster = NetChainCluster::testbed(config);
    for key in keys() {
        cluster.populate_key(key, &Value::from_u64(0));
    }
    cluster.install_scripted_client(0, script_healthy());
    cluster.install_scripted_client_at(1, script_failover(), SimDuration::from_millis(80));
    cluster.install_scripted_client_at(2, script_repaired(), SimDuration::from_millis(500));
    cluster.fail_switch_at(netchain_sim::SimTime::ZERO + fail_at, VICTIM as usize);
    cluster.sim.run_for(SimDuration::from_millis(700));

    let victim_ip = Ipv4Addr::for_switch(VICTIM);
    assert_eq!(
        cluster.controller().records().len(),
        1,
        "recovery must have completed in simulated time"
    );
    assert_eq!(cluster.controller().records()[0].failed_ip, victim_ip);
    let sim_phases: Vec<Vec<netchain_core::CompletedQuery>> = (0..3)
        .map(|h| {
            let client = cluster.scripted_client(h).expect("installed");
            assert!(client.is_done(), "sim phase {h} did not finish");
            assert_eq!(client.agent_stats().version_regressions, 0);
            client.results().to_vec()
        })
        .collect();

    // ---- Live fabric execution (deterministic replay, 2 shards) ----
    let ring = cluster.ring().clone();
    let mut fabric = ReplayFabric::new(
        ring,
        2,
        pipeline,
        &[Ipv4Addr::for_switch(REPLACEMENT)],
        cluster.agent_config(0),
    );
    for key in keys() {
        fabric.populate(key, &Value::from_u64(0));
    }
    let mut fabric_phases: Vec<Vec<netchain_core::CompletedQuery>> = Vec::new();

    // Phase A: healthy.
    fabric_phases.push(
        script_healthy()
            .into_iter()
            .map(|op| fabric.exec(op))
            .collect(),
    );
    // The failure, then Algorithm 2 — same planner as the sim controller.
    fabric.kill(victim_ip);
    fabric.fast_failover(victim_ip);
    // Phase B: degraded chains.
    fabric.reset_agent(cluster.agent_config(1));
    fabric_phases.push(
        script_failover()
            .into_iter()
            .map(|op| fabric.exec(op))
            .collect(),
    );
    // Algorithm 3: two-phase repair, group by group.
    fabric.start_recovery(
        victim_ip,
        Ipv4Addr::for_switch(REPLACEMENT),
        Some(RECOVERY_GROUPS),
    );
    fabric.repair_all();
    assert!(fabric.repair_complete());
    // Phase C: repaired.
    fabric.reset_agent(cluster.agent_config(2));
    fabric_phases.push(
        script_repaired()
            .into_iter()
            .map(|op| fabric.exec(op))
            .collect(),
    );
    assert_eq!(fabric.agent().stats().version_regressions, 0);

    // ---- Reply-stream comparison, phase by phase ----
    for (phase, (sim, fab)) in sim_phases.iter().zip(&fabric_phases).enumerate() {
        assert_eq!(sim.len(), fab.len(), "phase {phase}: op counts");
        for (i, (s, f)) in sim.iter().zip(fab).enumerate() {
            assert_eq!(s.op, f.op, "phase {phase} op {i}: scripts diverged");
            assert_eq!(s.request_id, f.request_id, "phase {phase} op {i}");
            assert_eq!(s.status, f.status, "phase {phase} op {i} ({:?})", s.op);
            assert_eq!(s.value, f.value, "phase {phase} op {i} ({:?})", s.op);
            assert_eq!(s.seq, f.seq, "phase {phase} op {i} ({:?})", s.op);
            assert_eq!(s.session, f.session, "phase {phase} op {i} ({:?})", s.op);
            assert_ne!(s.status, None, "phase {phase} op {i}: nothing may drop");
        }
    }
    // Phase B and C must have succeeded through failover/repair, not via
    // NotFound degradation.
    for phase in [1, 2] {
        for done in &fabric_phases[phase] {
            if matches!(done.op, KvOp::Read(_) | KvOp::Write(..)) {
                assert_eq!(
                    done.status,
                    Some(QueryStatus::Ok),
                    "phase {phase}: {done:?}"
                );
            }
        }
    }

    // ---- Per-switch KV state comparison (S0..S3, including the frozen
    // victim and the replacement) ----
    for idx in 0..4usize {
        let ip = Ipv4Addr::for_switch(idx as u32);
        let sim_state = kv_snapshot(cluster.switch(idx).switch().kv().export_entries());
        let fabric_state = kv_snapshot(fabric.switch_state(ip));
        assert_eq!(
            sim_state, fabric_state,
            "switch {idx} diverged between simulator and live fabric"
        );
    }
}
