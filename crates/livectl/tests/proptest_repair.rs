//! Property test of two-phase chain repair, under proptest-generated
//! failure timings and op interleavings:
//!
//! * a read that would be served by the dead switch (its route's first hop
//!   is the victim) is **never** answered while its virtual group is
//!   blocked — the block rule holds, so no stale or half-synchronised state
//!   can leak;
//! * a read that does complete never returns a value older than the last
//!   acknowledged write (it returns that write's value, or a later
//!   not-yet-acknowledged one — a concurrent write that is allowed to
//!   commit);
//! * an **acknowledged write is never lost**: after repair completes, every
//!   key reads back as its last acknowledged write (or a later unacked
//!   overwrite), at a version no older than the acknowledged one;
//! * the client agent observes zero version regressions throughout.

use netchain_core::{HashRing, KvOp};
use netchain_livectl::{replay_agent_config, ReplayFabric};
use netchain_switch::PipelineConfig;
use netchain_wire::{Ipv4Addr, Key, QueryStatus, Value};
use proptest::prelude::*;
use proptest::test_runner::TestCaseError;
use std::collections::HashMap;

const NUM_KEYS: u64 = 12;

#[derive(Debug, Clone)]
enum Action {
    Write(u64),
    Read(u64),
    /// Block the next repair group (no-op if one is already blocked or
    /// repair is done).
    Block,
    /// Synchronise + activate the blocked group (no-op if none is blocked).
    Activate,
}

fn arb_action() -> impl Strategy<Value = Action> {
    prop_oneof![
        (0..NUM_KEYS).prop_map(Action::Write),
        (0..NUM_KEYS).prop_map(Action::Read),
        (0..NUM_KEYS).prop_map(Action::Write),
        (0..NUM_KEYS).prop_map(Action::Read),
        Just(Action::Block),
        Just(Action::Activate),
    ]
}

/// Per-key ground truth the fabric must respect.
#[derive(Debug, Default, Clone)]
struct Truth {
    /// Value and seq of the last acknowledged write.
    acked: Option<(u64, u64)>,
    /// Values written after the last ack that were not (yet) acknowledged —
    /// concurrent writes allowed, but not required, to commit.
    unacked_after: Vec<u64>,
}

fn check_read_value(
    truth: &Truth,
    key: u64,
    value: &Value,
    seq: u64,
    context: &str,
) -> Result<(), TestCaseError> {
    let got = value.as_u64();
    match truth.acked {
        Some((acked_value, acked_seq)) => {
            let allowed =
                got == Some(acked_value) || got.is_some_and(|v| truth.unacked_after.contains(&v));
            prop_assert!(
                allowed,
                "{context}: key {key} read {got:?}, expected acked {acked_value} \
                 or one of the unacked overwrites {:?}",
                truth.unacked_after
            );
            prop_assert!(
                seq >= acked_seq,
                "{context}: key {key} version regressed: {seq} < acked {acked_seq}"
            );
        }
        None => {
            // Never acknowledged a write: the initial value (0) or any
            // unacked write is acceptable.
            let allowed = got == Some(0) || got.is_some_and(|v| truth.unacked_after.contains(&v));
            prop_assert!(allowed, "{context}: key {key} read {got:?} from nowhere");
        }
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn repair_never_serves_blocked_reads_and_never_loses_acked_writes(
        victim_idx in 0u32..3,
        recovery_groups in 1u32..8,
        pre_writes in proptest::collection::vec(0..NUM_KEYS, 0..12),
        actions in proptest::collection::vec(arb_action(), 0..48),
    ) {
        let ring = HashRing::new((0..3).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
        let spare = Ipv4Addr::for_switch(3);
        let victim = Ipv4Addr::for_switch(victim_idx);
        let mut fabric = ReplayFabric::new(
            ring.clone(),
            2,
            PipelineConfig::tiny(256),
            &[spare],
            replay_agent_config(0),
        );
        for k in 0..NUM_KEYS {
            fabric.populate(Key::from_u64(k), &Value::from_u64(0));
        }
        let mut truth: HashMap<u64, Truth> = HashMap::new();
        let mut next_value = 1u64;

        // Healthy writes, all acknowledged.
        for k in pre_writes {
            let value = next_value;
            next_value += 1;
            let done = fabric.exec(KvOp::Write(Key::from_u64(k), Value::from_u64(value)));
            prop_assert_eq!(done.status, Some(QueryStatus::Ok));
            truth.insert(k, Truth { acked: Some((value, done.seq)), unacked_after: Vec::new() });
        }

        // The failure and Algorithm 2.
        fabric.kill(victim);
        fabric.fast_failover(victim);
        fabric.start_recovery(victim, spare, Some(recovery_groups));

        // Proptest-chosen interleaving of traffic and repair steps.
        for action in actions {
            match action {
                Action::Block => { fabric.block_next_group(); }
                Action::Activate => { fabric.finish_blocked_group(); }
                Action::Write(k) => {
                    let key = Key::from_u64(k);
                    let value = next_value;
                    next_value += 1;
                    let done = fabric.exec(KvOp::Write(key, Value::from_u64(value)));
                    let entry = truth.entry(k).or_default();
                    match done.status {
                        Some(QueryStatus::Ok) => {
                            *entry = Truth { acked: Some((value, done.seq)), unacked_after: Vec::new() };
                        }
                        Some(other) => prop_assert!(false, "write answered {other:?}"),
                        None => entry.unacked_after.push(value),
                    }
                }
                Action::Read(k) => {
                    let key = Key::from_u64(k);
                    let route_hits_victim =
                        ring.chain_for_key(&key).tail() == victim;
                    let blocked = fabric.is_key_blocked(&key);
                    let done = fabric.exec(KvOp::Read(key));
                    if route_hits_victim && blocked {
                        prop_assert!(
                            done.status.is_none(),
                            "a blocked group's read towards the dead switch must not be \
                             served, got {:?}",
                            done.status
                        );
                        continue;
                    }
                    if done.status == Some(QueryStatus::Ok) {
                        let entry = truth.entry(k).or_default();
                        check_read_value(entry, k, &done.value, done.seq, "mid-repair read")?;
                    }
                }
            }
        }

        // Finish the repair and verify nothing acknowledged was lost.
        fabric.repair_all();
        prop_assert!(fabric.repair_complete());
        for k in 0..NUM_KEYS {
            let done = fabric.exec(KvOp::Read(Key::from_u64(k)));
            prop_assert!(
                done.status == Some(QueryStatus::Ok),
                "key {} must be readable after repair, got {:?}",
                k,
                done.status
            );
            let entry = truth.entry(k).or_default();
            check_read_value(entry, k, &done.value, done.seq, "post-repair read")?;
        }
        prop_assert_eq!(fabric.agent().stats().version_regressions, 0);
    }
}
