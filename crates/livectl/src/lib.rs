//! # netchain-livectl
//!
//! The live control plane for the multi-core fabric: where `netchain-fabric`
//! measures the failure-free fast path, this crate runs the *reconfiguration
//! half of Vertical Paxos* (§5) against that same fabric at real throughput —
//! fault injection, fast failover (Algorithm 2), and group-by-group chain
//! repair with two-phase atomic switching (Algorithm 3) — and measures the
//! result as a throughput-vs-time series across the failure, failover and
//! recovery phases (the live analogue of the paper's Figures 10–11).
//!
//! ## Pieces
//!
//! * [`control`] — the per-shard control channel: commands/events over the
//!   fabric's lock-free SPSC rings, applied at burst boundaries.
//! * [`script`] — the fault script: which switch dies, when, and how the
//!   controller paces detection, failover and repair.
//! * [`runner`] — [`run_live_controlled`]: the threaded deployment shape
//!   (shards + retrying duration-driven clients + controller), producing a
//!   time-sliced [`LiveReport`]. A monitor thread watches per-shard rolling
//!   windows while the run is live.
//! * [`detector`] — the gray-failure detector: peer-median comparison over
//!   the rolling windows, flagging a shard that is slow but alive.
//! * [`replay`] — the same fabric and the same control commands driven
//!   deterministically on one thread, for the simulator differential test
//!   and the chain-repair property test.
//! * [`report`] — the run report: throughput slices and the phase timeline
//!   (including the measured rule-installation latency).
//!
//! The planning logic (which rules, which donors, which session numbers) is
//! **not** here: it lives in `netchain_core::failplan`, shared with the
//! simulated controller, so the live path and the simulated path cannot
//! drift apart — a property the differential tests pin down.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod control;
pub mod detector;
pub mod replay;
pub mod report;
pub mod runner;
pub mod script;

pub use control::{apply as apply_control, ControlCmd, ControlEvt};
pub use detector::{Anomaly, DetectorConfig, GrayFailureDetector};
pub use replay::{replay_agent_config, ReplayFabric};
pub use report::{FailoverTimeline, LiveAnomaly, LiveReport};
pub use runner::{run_live_controlled, run_live_observed, LiveConfig};
pub use script::FaultScript;
