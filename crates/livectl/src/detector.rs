//! Gray-failure detection: flagging a shard that is *slow but alive*.
//!
//! Fail-stop failures are easy — the paper's controller hears a BFD timeout
//! and runs Algorithm 2. The harder production case is the gray failure: a
//! worker that still answers (so nothing times out) but at a fraction of its
//! peers' rate, silently dragging tail latency. The fabric's shards are
//! symmetric by construction — the keyspace is spread uniformly over virtual
//! groups — so peer comparison is a sound detector: in a healthy run every
//! shard's per-slice throughput tracks the peer median closely.
//!
//! [`GrayFailureDetector`] is a pure function over per-slice counters (from
//! the telemetry [`netchain_telemetry::WindowRegistry`]): a shard whose ops
//! fall below [`DetectorConfig::ratio`] of its peers' median for
//! [`DetectorConfig::consecutive`] slices is flagged. Operating on explicit
//! slice indices keeps the detector fully deterministic — tests feed
//! synthetic slices and the detector cannot tell the difference — and a
//! global dip (overload, a fault script's repair window) never trips it,
//! because the median dips with the victim.

use netchain_telemetry::{SliceCounters, WindowChannel};

/// Tuning knobs of the gray-failure detector.
#[derive(Debug, Clone, Copy)]
pub struct DetectorConfig {
    /// Slices are only judged when the peers' median ops reaches this floor
    /// (warm-up, drain and idle slices are unjudgeable noise).
    pub min_peer_median: u64,
    /// A shard is suspect in a slice when its ops fall strictly below
    /// `ratio × peer median`.
    pub ratio: f64,
    /// Consecutive suspect slices before the shard is flagged. With 2, a
    /// straggler is flagged on the second bad slice — within 3 slices of
    /// onset.
    pub consecutive: usize,
    /// Slices to suppress re-flagging the same shard after an anomaly.
    pub cooldown: u64,
}

impl Default for DetectorConfig {
    fn default() -> Self {
        DetectorConfig {
            min_peer_median: 50,
            ratio: 0.5,
            consecutive: 2,
            cooldown: 32,
        }
    }
}

/// One flagged gray failure.
#[derive(Debug, Clone, PartialEq)]
pub struct Anomaly {
    /// The straggler shard.
    pub shard: usize,
    /// The slice the detection fired in.
    pub slice: u64,
    /// The shard's ops in that slice.
    pub ops: u64,
    /// Its peers' median ops in that slice.
    pub peer_median: u64,
    /// `ops / peer_median` — how far behind the straggler is.
    pub severity: f64,
}

impl Anomaly {
    /// One-line human-readable description.
    pub fn describe(&self) -> String {
        format!(
            "gray failure: shard {} at {:.0}% of peer median ({} vs {} ops) in slice {}",
            self.shard,
            self.severity * 100.0,
            self.ops,
            self.peer_median,
            self.slice,
        )
    }
}

/// Streak-tracking peer-comparison detector. Feed it every completed slice
/// in order via [`GrayFailureDetector::observe_slice`].
#[derive(Debug)]
pub struct GrayFailureDetector {
    config: DetectorConfig,
    /// Consecutive suspect slices per shard.
    streak: Vec<usize>,
    /// Earliest slice each shard may be flagged again.
    quiet_until: Vec<u64>,
}

impl GrayFailureDetector {
    /// A detector over `num_shards` peers.
    pub fn new(num_shards: usize, config: DetectorConfig) -> Self {
        assert!(num_shards > 0, "detector needs at least one shard");
        assert!(config.consecutive > 0, "consecutive must be positive");
        assert!(
            config.ratio > 0.0 && config.ratio < 1.0,
            "ratio must be in (0, 1)"
        );
        GrayFailureDetector {
            config,
            streak: vec![0; num_shards],
            quiet_until: vec![0; num_shards],
        }
    }

    /// Judges one completed slice (per-shard counters from
    /// `WindowRegistry::slice_across_shards`) and returns any anomalies
    /// fired. With fewer than 3 shards there are no meaningful peers and the
    /// detector never fires.
    pub fn observe_slice(&mut self, slice: u64, per_shard: &[SliceCounters]) -> Vec<Anomaly> {
        assert_eq!(per_shard.len(), self.streak.len(), "shard count changed");
        let mut anomalies = Vec::new();
        if per_shard.len() < 3 {
            return anomalies;
        }
        let ops: Vec<u64> = per_shard
            .iter()
            .map(|c| c[WindowChannel::Ops as usize])
            .collect();
        let mut peers = Vec::with_capacity(ops.len() - 1);
        for (shard, &own) in ops.iter().enumerate() {
            peers.clear();
            peers.extend(
                ops.iter()
                    .enumerate()
                    .filter(|&(j, _)| j != shard)
                    .map(|(_, &o)| o),
            );
            peers.sort_unstable();
            let median = peers[peers.len() / 2];
            let suspect = median >= self.config.min_peer_median
                && (own as f64) < self.config.ratio * median as f64;
            if !suspect {
                self.streak[shard] = 0;
                continue;
            }
            self.streak[shard] += 1;
            if self.streak[shard] >= self.config.consecutive && slice >= self.quiet_until[shard] {
                self.quiet_until[shard] = slice + self.config.cooldown;
                self.streak[shard] = 0;
                anomalies.push(Anomaly {
                    shard,
                    slice,
                    ops: own,
                    peer_median: median,
                    severity: own as f64 / median as f64,
                });
            }
        }
        anomalies
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_telemetry::{FlightRecorder, Json, WindowRegistry};
    use std::time::Duration;

    fn counters(ops: u64) -> SliceCounters {
        let mut c = SliceCounters::default();
        c[WindowChannel::Ops as usize] = ops;
        c
    }

    #[test]
    fn healthy_symmetric_shards_never_fire() {
        let mut d = GrayFailureDetector::new(4, DetectorConfig::default());
        for slice in 0..50 {
            let per_shard: Vec<SliceCounters> = (0..4)
                .map(|s| counters(100 + (slice + s as u64) % 7))
                .collect();
            assert!(d.observe_slice(slice, &per_shard).is_empty());
        }
    }

    #[test]
    fn global_dip_is_not_a_gray_failure() {
        // A fault script's repair window drags every shard down together;
        // the peer median dips too, so nobody is flagged.
        let mut d = GrayFailureDetector::new(4, DetectorConfig::default());
        for slice in 0..20 {
            let ops = if (5..10).contains(&slice) { 10 } else { 200 };
            let per_shard: Vec<SliceCounters> = (0..4).map(|_| counters(ops)).collect();
            assert!(d.observe_slice(slice, &per_shard).is_empty());
        }
    }

    #[test]
    fn idle_slices_are_unjudgeable() {
        let mut d = GrayFailureDetector::new(3, DetectorConfig::default());
        for slice in 0..10 {
            // Below the floor: even a 0-ops shard stays unflagged.
            let per_shard = vec![counters(0), counters(20), counters(20)];
            assert!(d.observe_slice(slice, &per_shard).is_empty());
        }
    }

    #[test]
    fn cooldown_suppresses_refiring() {
        let cfg = DetectorConfig {
            cooldown: 8,
            ..DetectorConfig::default()
        };
        let mut d = GrayFailureDetector::new(3, cfg);
        let mut fired = Vec::new();
        for slice in 0..12 {
            let per_shard = vec![counters(10), counters(200), counters(200)];
            fired.extend(d.observe_slice(slice, &per_shard));
        }
        // Fires once at slice 1 (streak of 2), then stays quiet through
        // slice 8; the still-running streak refires as soon as the cooldown
        // lifts at slice 9.
        assert_eq!(fired.len(), 2);
        assert_eq!(fired[0].slice, 1);
        assert_eq!(fired[1].slice, 9);
    }

    /// The acceptance path end to end, fully deterministic: a shard slowed
    /// from slice 1 on is flagged within 3 slices of onset, and the flight
    /// recorder dumps the window of history leading up to the anomaly.
    #[test]
    fn slowed_shard_is_detected_within_three_slices_with_flight_dump() {
        let dir = std::env::temp_dir().join(format!("netchain-gray-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        std::env::set_var("NETCHAIN_ARTIFACT_DIR", &dir);

        let slice_len = Duration::from_millis(100);
        let registry = WindowRegistry::new(4, 16, slice_len);
        let mut detector = GrayFailureDetector::new(4, DetectorConfig::default());
        let recorder = FlightRecorder::new(64);
        let onset = 1u64;
        let mut detection = None;
        for slice in 0..8u64 {
            // The injected gray failure: shard 2 runs at 15% of its peers
            // from `onset` on (slow, not dead).
            for shard in 0..4usize {
                let ops = if shard == 2 && slice >= onset {
                    30
                } else {
                    200
                };
                registry.window(shard).add(slice, WindowChannel::Ops, ops);
            }
            let across = registry.slice_across_shards(slice);
            let at_ns = slice * slice_len.as_nanos() as u64;
            recorder.record(
                at_ns,
                "slice",
                vec![(
                    "ops",
                    Json::Arr(
                        across
                            .iter()
                            .map(|c| Json::U64(c[WindowChannel::Ops as usize]))
                            .collect(),
                    ),
                )],
            );
            if let Some(anomaly) = detector.observe_slice(slice, &across).pop() {
                recorder.record(
                    at_ns,
                    "anomaly",
                    vec![("detail", Json::str(anomaly.describe()))],
                );
                let path = recorder.dump("gray_test").expect("dump written");
                detection = Some((slice, anomaly, path));
                break;
            }
        }
        std::env::remove_var("NETCHAIN_ARTIFACT_DIR");

        let (slice, anomaly, path) = detection.expect("the slowed shard must be detected");
        assert_eq!(anomaly.shard, 2);
        assert!(
            slice <= onset + 2,
            "detected at slice {slice}, more than 3 slices after onset {onset}"
        );
        assert!(anomaly.severity < 0.5);
        let dump = std::fs::read_to_string(&path).expect("dump readable");
        assert!(dump.contains("\"kind\":\"anomaly\""));
        assert!(dump.contains("shard 2"));
        // The dump carries the history leading up to the anomaly, not just
        // the verdict.
        assert!(dump.matches("\"kind\":\"slice\"").count() >= 2);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
