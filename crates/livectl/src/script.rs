//! The fault script: *what* to break and *when*, for a live-controlled run.

use netchain_wire::Ipv4Addr;
use std::time::Duration;

/// A scripted switch failure plus the controller's reaction timings.
///
/// The timeline of a run with a fault script:
///
/// ```text
/// 0 ──────── kill_at ─┬─ failover_delay ─┬─ recovery_delay ─┬─ sync_duration ─┬──── duration
///    steady state     │   (detection;    │  (degraded:      │  per-group      │  restored
///                     │    traffic to    │   chains run     │  block → sync   │  steady state
///                     │    the victim    │   one short)     │  → activate     │
///                     │    is lost)      │                  │                 │
///                  switch killed      Algorithm 2        repair starts     repair done
/// ```
#[derive(Debug, Clone, Copy)]
pub struct FaultScript {
    /// The switch to kill.
    pub victim: Ipv4Addr,
    /// When to kill it, relative to run start.
    pub kill_at: Duration,
    /// Failure-detection time: how long the controller takes to notice and
    /// run fast failover (the paper's controller reacts in well under a
    /// millisecond once notified; the detection delay is what an operator
    /// actually observes as the dip).
    pub failover_delay: Duration,
    /// Pause between completed failover and the start of chain repair (the
    /// paper separates the phases by ~20 s to make them visible; scaled down
    /// here).
    pub recovery_delay: Duration,
    /// Total state-synchronisation budget across all repaired groups: each
    /// group's blocked window is `sync_duration / groups`, emulating the
    /// dominant cost the paper measures (copying register state through the
    /// switch control plane).
    pub sync_duration: Duration,
    /// Repair granularity: `None` repairs the ring's own virtual groups;
    /// `Some(g)` repairs the key space in `g` equal hash groups (the
    /// Figure 10 "1 vs 100 virtual groups" comparison).
    pub recovery_groups: Option<u32>,
    /// Replacement switch; `None` lets the controller pick a live one (use a
    /// spare — `FabricConfig::num_spares` — for the honest paper shape).
    pub replacement: Option<Ipv4Addr>,
}

impl FaultScript {
    /// A script that kills `victim` with paper-shaped (but scaled-down)
    /// timings: kill at 600 ms, 50 ms detection, repair from 1.2 s taking
    /// 600 ms, in `groups` virtual groups.
    pub fn scaled_default(victim: Ipv4Addr, groups: u32) -> Self {
        FaultScript {
            victim,
            kill_at: Duration::from_millis(600),
            failover_delay: Duration::from_millis(50),
            recovery_delay: Duration::from_millis(550),
            sync_duration: Duration::from_millis(600),
            recovery_groups: Some(groups),
            replacement: None,
        }
    }

    /// When repair finishes, relative to run start.
    pub fn repair_ends_at(&self) -> Duration {
        self.kill_at + self.failover_delay + self.recovery_delay + self.sync_duration
    }
}
