//! The control-plane vocabulary: the commands a controller sends to a shard
//! and the events a shard sends back, plus the single function that applies
//! a command to a [`Shard`].
//!
//! Commands travel over the same bounded lock-free SPSC rings the dataplane
//! uses for frames (`netchain_fabric::ring`), one pair per shard. The shard
//! worker drains its command ring **between bursts**, so a command takes
//! effect at a burst boundary — the software analogue of a switch OS
//! updating match-action tables between pipeline passes. Every command
//! carries a token and is acknowledged, which is what lets the controller
//! (a) measure rule-installation latency honestly and (b) sequence the
//! two-phase repair: phase 2 of a group never starts before every shard has
//! acknowledged phase 1.

use netchain_core::failplan::{FailoverPlan, GroupRepair};
use netchain_fabric::Shard;
use netchain_switch::kv::ExportedEntry;
use netchain_switch::{FailoverRule, RuleScope};
use netchain_wire::Ipv4Addr;

/// A controller → shard command. All commands are idempotent, so a cautious
/// controller may re-send.
#[derive(Debug, Clone)]
pub enum ControlCmd {
    /// Fault injection: fail-stop switch `ip` on this shard.
    KillSwitch {
        /// Switch to kill.
        ip: Ipv4Addr,
        /// Ack token.
        token: u64,
    },
    /// Install a failover/recovery rule for traffic destined to `failed_ip`
    /// into every live switch replica of the shard.
    InstallRule {
        /// The failed switch the rule is keyed on.
        failed_ip: Ipv4Addr,
        /// The rule.
        rule: FailoverRule,
        /// Ack token.
        token: u64,
    },
    /// Remove a previously installed rule (matched by priority and scope).
    RemoveRule {
        /// The failed switch the rule is keyed on.
        failed_ip: Ipv4Addr,
        /// Priority of the rule to remove.
        priority: u8,
        /// Scope of the rule to remove.
        scope: RuleScope,
        /// Ack token.
        token: u64,
    },
    /// Set the session number switch `ip` stamps on writes it sequences.
    SetSession {
        /// Target switch.
        ip: Ipv4Addr,
        /// New session number.
        session: u64,
        /// Ack token.
        token: u64,
    },
    /// Activate or deactivate query processing on switch `ip`.
    SetActive {
        /// Target switch.
        ip: Ipv4Addr,
        /// Whether the switch processes queries addressed to it.
        active: bool,
        /// Ack token.
        token: u64,
    },
    /// Export switch `ip`'s entries for one virtual group (the donor side of
    /// chain repair). Answered with [`ControlEvt::Export`].
    ExportGroup {
        /// Donor switch.
        ip: Ipv4Addr,
        /// Virtual group to export.
        group: u32,
        /// Total number of virtual groups.
        modulus: u32,
        /// Token echoed in the export event.
        token: u64,
    },
    /// Import entries into switch `ip`'s store (the replacement side of
    /// chain repair).
    ImportEntries {
        /// Replacement switch.
        ip: Ipv4Addr,
        /// Entries to import.
        entries: Vec<ExportedEntry>,
        /// Ack token.
        token: u64,
    },
}

impl ControlCmd {
    /// The command's ack token.
    pub fn token(&self) -> u64 {
        match *self {
            ControlCmd::KillSwitch { token, .. }
            | ControlCmd::InstallRule { token, .. }
            | ControlCmd::RemoveRule { token, .. }
            | ControlCmd::SetSession { token, .. }
            | ControlCmd::SetActive { token, .. }
            | ControlCmd::ExportGroup { token, .. }
            | ControlCmd::ImportEntries { token, .. } => token,
        }
    }
}

/// A shard → controller event.
#[derive(Debug, Clone)]
pub enum ControlEvt {
    /// The command with this token has been applied.
    Ack {
        /// Token of the acknowledged command.
        token: u64,
    },
    /// The entries requested by [`ControlCmd::ExportGroup`].
    Export {
        /// Token of the export request.
        token: u64,
        /// The exported entries.
        entries: Vec<ExportedEntry>,
    },
}

impl ControlEvt {
    /// The event's token.
    pub fn token(&self) -> u64 {
        match *self {
            ControlEvt::Ack { token } | ControlEvt::Export { token, .. } => token,
        }
    }
}

/// A command with its ack token left open (the runner stamps fresh tokens
/// per shard; the replay driver stamps zero).
pub type CmdBuilder = Box<dyn Fn(u64) -> ControlCmd + Send>;

/// The ordered broadcast sequence of Algorithm 2 (fast failover): the
/// ChainFailover rule, then one session bump per new chain head, in plan
/// order (`new_heads[i]` gets `base_session + i`). The threaded runner and
/// the replay driver both execute exactly this list, so their command
/// streams cannot drift apart; after executing it the caller advances its
/// session counter by `plan.new_heads.len()`.
pub fn failover_sequence(plan: &FailoverPlan, base_session: u64) -> Vec<CmdBuilder> {
    let failed_ip = plan.failed_ip;
    let rule = plan.rule;
    let mut cmds: Vec<CmdBuilder> = vec![Box::new(move |token| ControlCmd::InstallRule {
        failed_ip,
        rule,
        token,
    })];
    for (i, &head) in plan.new_heads.iter().enumerate() {
        let session = base_session + i as u64;
        cmds.push(Box::new(move |token| ControlCmd::SetSession {
            ip: head,
            session,
            token,
        }));
    }
    cmds
}

/// The ordered broadcast sequence of Algorithm 3 phase 2 for one repaired
/// group: activate the replacement, stamp its fresh session, install the
/// redirect, and drop the block it overrides — shared between the runner
/// and the replay driver for the same reason as [`failover_sequence`].
pub fn activation_sequence(
    failed_ip: Ipv4Addr,
    replacement: Ipv4Addr,
    session: u64,
    step: &GroupRepair,
) -> Vec<CmdBuilder> {
    let redirect = step.redirect;
    let block = step.block;
    vec![
        Box::new(move |token| ControlCmd::SetActive {
            ip: replacement,
            active: true,
            token,
        }),
        Box::new(move |token| ControlCmd::SetSession {
            ip: replacement,
            session,
            token,
        }),
        Box::new(move |token| ControlCmd::InstallRule {
            failed_ip,
            rule: redirect,
            token,
        }),
        Box::new(move |token| ControlCmd::RemoveRule {
            failed_ip,
            priority: block.priority,
            scope: block.scope,
            token,
        }),
    ]
}

/// Applies one command to a shard, producing the event to send back. This is
/// the only place commands are interpreted — the threaded runner and the
/// deterministic replay driver both call it, so they cannot drift apart.
pub fn apply(shard: &mut Shard, cmd: ControlCmd) -> ControlEvt {
    match cmd {
        ControlCmd::KillSwitch { ip, token } => {
            shard.kill_switch(ip);
            ControlEvt::Ack { token }
        }
        ControlCmd::InstallRule {
            failed_ip,
            rule,
            token,
        } => {
            shard.install_rule(failed_ip, rule);
            ControlEvt::Ack { token }
        }
        ControlCmd::RemoveRule {
            failed_ip,
            priority,
            scope,
            token,
        } => {
            shard.remove_rule(failed_ip, priority, scope);
            ControlEvt::Ack { token }
        }
        ControlCmd::SetSession { ip, session, token } => {
            shard.set_session(ip, session);
            ControlEvt::Ack { token }
        }
        ControlCmd::SetActive { ip, active, token } => {
            shard.set_active(ip, active);
            ControlEvt::Ack { token }
        }
        ControlCmd::ExportGroup {
            ip,
            group,
            modulus,
            token,
        } => ControlEvt::Export {
            token,
            entries: shard.export_group(ip, group, modulus),
        },
        ControlCmd::ImportEntries { ip, entries, token } => {
            shard.import_entries(ip, &entries);
            ControlEvt::Ack { token }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_core::HashRing;
    use netchain_switch::{FailoverAction, PipelineConfig};
    use netchain_wire::{Key, Value};

    #[test]
    fn commands_apply_and_ack() {
        let ring = HashRing::new((0..4).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
        let spare = Ipv4Addr::for_switch(9);
        let mut shard = Shard::with_spares(0, 1, ring.clone(), PipelineConfig::tiny(64), &[spare]);
        let key = Key::from_name("ctl/key");
        shard.populate(key, &Value::from_u64(4));
        let victim = ring.chain_for_key(&key).head();

        let evt = apply(
            &mut shard,
            ControlCmd::KillSwitch {
                ip: victim,
                token: 1,
            },
        );
        assert!(matches!(evt, ControlEvt::Ack { token: 1 }));
        assert!(shard.is_failed(victim));

        let evt = apply(
            &mut shard,
            ControlCmd::InstallRule {
                failed_ip: victim,
                rule: FailoverRule {
                    priority: 1,
                    scope: RuleScope::All,
                    action: FailoverAction::ChainFailover,
                },
                token: 2,
            },
        );
        assert_eq!(evt.token(), 2);

        let modulus = ring.num_virtual_nodes() as u32;
        let group = ring.group_of(&key);
        let donor = ring.chain_for_key(&key).switches[1];
        let evt = apply(
            &mut shard,
            ControlCmd::ExportGroup {
                ip: donor,
                group,
                modulus,
                token: 3,
            },
        );
        let ControlEvt::Export { token: 3, entries } = evt else {
            panic!("export must answer with entries");
        };
        assert!(entries.iter().any(|e| e.key == key));

        let evt = apply(
            &mut shard,
            ControlCmd::ImportEntries {
                ip: spare,
                entries,
                token: 4,
            },
        );
        assert_eq!(evt.token(), 4);
        assert!(shard.switch(spare).unwrap().kv().lookup(&key).is_some());
    }
}
