//! The live-controlled fabric runner: `run_live` plus a control plane.
//!
//! [`run_live_controlled`] spawns the same thread-per-shard / thread-per-
//! client deployment shape as [`netchain_fabric::run_live`], with three
//! additions:
//!
//! * every shard gets a **control channel** (one SPSC ring per direction) the
//!   controller thread programs it through, drained between bursts;
//! * clients are **duration-driven and retrying**: a query the dataplane
//!   drops (a dead switch before rules arrive, a blocked group during
//!   repair) is retransmitted after a timeout, exactly like the paper's UDP
//!   clients, and every completion is bucketed into a **time slice** so the
//!   run produces a throughput-vs-time series;
//! * an optional **controller thread** executes a [`FaultScript`] live: kill
//!   the victim, run Algorithm 2 after the detection delay, then repair the
//!   chains group by group with two-phase atomic switching — copying real
//!   register state from donor to replacement through the control channel
//!   while untouched groups keep serving.

use crate::control::{self, ControlCmd, ControlEvt};
use crate::detector::{DetectorConfig, GrayFailureDetector};
use crate::report::{FailoverTimeline, LiveAnomaly, LiveReport};
use crate::script::FaultScript;
use netchain_core::failplan::{self, FailoverPlan, RecoveryPlan};
use netchain_core::{AgentConfig, HashRing};
use netchain_fabric::{
    build_shards, spsc_ring, ClientState, Consumer, FabricConfig, Frame, Producer, WorkloadSpec,
};
use netchain_sim::{SimDuration, SimTime};
use netchain_telemetry::{
    merge_traces, FlightRecorder, HistSnapshot, Journal, Json, PacketTrace, ShadowAuditor,
    TimeSeries, WindowChannel, WindowRegistry,
};
use netchain_wire::{BatchEncoder, Ipv4Addr};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// How long after the deadline clients keep draining outstanding queries
/// before giving up on the run.
const DRAIN_GRACE: Duration = Duration::from_secs(5);

/// Capacity of each control ring, in commands/events.
const CONTROL_RING: usize = 64;

/// Slices retained by the default observation windows — enough history to
/// cover any plausible gray-failure streak plus the flight-recorder dump.
const OBSERVE_SLICES: usize = 64;

/// Events the monitor's flight recorder retains.
const FLIGHT_CAPACITY: usize = 256;

/// Configuration of a live-controlled run.
#[derive(Debug, Clone, Copy)]
pub struct LiveConfig {
    /// Fabric geometry (shards, clients, switches, spares, rings).
    pub fabric: FabricConfig,
    /// Op mix and key population. `ops_per_client` is ignored: the run is
    /// duration-driven.
    pub workload: WorkloadSpec,
    /// Wall-clock length of the measured run.
    pub duration: Duration,
    /// Width of one throughput slice.
    pub slice: Duration,
    /// Client retransmission timeout (paper: ~1 ms for datacenter RTTs).
    pub retry_timeout: Duration,
    /// Client retry budget. Generous by default: during a blocked group's
    /// sync window a write legitimately retries many times.
    pub max_retries: u32,
    /// The fault to inject, if any.
    pub script: Option<FaultScript>,
}

impl LiveConfig {
    /// A live run of `fabric` under `workload` for `duration`, with 20 ms
    /// slices, 1 ms retransmission timeout, and no fault.
    pub fn new(fabric: FabricConfig, workload: WorkloadSpec, duration: Duration) -> Self {
        LiveConfig {
            fabric,
            workload,
            duration,
            slice: Duration::from_millis(20),
            retry_timeout: Duration::from_millis(1),
            max_retries: 100_000,
            script: None,
        }
    }

    /// Returns a copy with the given fault script.
    pub fn with_script(mut self, script: FaultScript) -> Self {
        self.script = Some(script);
        self
    }
}

/// The controller's end of one shard's control channel.
struct ControllerLink {
    tx: Producer<ControlCmd>,
    rx: Consumer<ControlEvt>,
}

impl ControllerLink {
    fn send(&mut self, cmd: ControlCmd) {
        let mut item = Some(cmd);
        loop {
            match self.tx.push(item.take().expect("refilled on Err")) {
                Ok(()) => return,
                Err(back) => {
                    item = Some(back);
                    std::thread::yield_now();
                }
            }
        }
    }

    fn wait(&mut self, token: u64) -> ControlEvt {
        loop {
            if let Some(evt) = self.rx.pop() {
                assert_eq!(
                    evt.token(),
                    token,
                    "control channel is FIFO; events must arrive in order"
                );
                return evt;
            }
            std::thread::yield_now();
        }
    }
}

/// The live controller: executes the fault script against the shards.
struct LiveController {
    links: Vec<ControllerLink>,
    ring: HashRing,
    spares: Vec<Ipv4Addr>,
    next_token: u64,
    /// Continues the same sequence the simulated controller uses: failover
    /// head bumps first, then one bump per activated group.
    next_session: u64,
}

impl LiveController {
    fn token(&mut self) -> u64 {
        self.next_token += 1;
        self.next_token
    }

    /// Sends `cmd(token)` to every shard and waits for all acks.
    fn broadcast(&mut self, cmd: impl Fn(u64) -> ControlCmd) {
        let tokens: Vec<u64> = (0..self.links.len()).map(|_| self.token()).collect();
        for (link, &token) in self.links.iter_mut().zip(&tokens) {
            link.send(cmd(token));
        }
        for (link, &token) in self.links.iter_mut().zip(&tokens) {
            link.wait(token);
        }
    }

    fn sleep_until(t0: Instant, offset: Duration) {
        loop {
            let elapsed = t0.elapsed();
            if elapsed >= offset {
                return;
            }
            std::thread::sleep((offset - elapsed).min(Duration::from_millis(1)));
        }
    }

    /// Runs the script; returns the phase timeline.
    fn run(&mut self, script: &FaultScript, t0: Instant) -> FailoverTimeline {
        let mut timeline = FailoverTimeline::default();
        let victim = script.victim;

        // Fault injection.
        Self::sleep_until(t0, script.kill_at);
        self.broadcast(|token| ControlCmd::KillSwitch { ip: victim, token });
        timeline.killed_at = t0.elapsed();

        // Fast failover (Algorithm 2), after the detection delay. The
        // command sequence is shared with the replay driver.
        Self::sleep_until(t0, script.kill_at + script.failover_delay);
        timeline.failover_started_at = t0.elapsed();
        let plan = FailoverPlan::compute(&self.ring, victim);
        for builder in control::failover_sequence(&plan, self.next_session) {
            self.broadcast(&builder);
        }
        self.next_session += plan.new_heads.len() as u64;
        timeline.failover_installed_at = t0.elapsed();
        timeline.failover_install_time =
            timeline.failover_installed_at - timeline.failover_started_at;

        // Chain repair (Algorithm 3), group by group.
        let replacement = script
            .replacement
            .or_else(|| self.spares.first().copied())
            .or_else(|| {
                failplan::pick_replacement(
                    &self.ring,
                    victim,
                    &std::collections::HashSet::from([victim]),
                    None,
                )
            })
            .expect("a replacement switch exists");
        let rplan = RecoveryPlan::compute(
            &self.ring,
            victim,
            replacement,
            script.recovery_groups,
            &std::collections::HashSet::from([victim]),
        );
        let per_group = script.sync_duration / rplan.steps.len().max(1) as u32;
        let repair_start = script.kill_at + script.failover_delay + script.recovery_delay;
        Self::sleep_until(t0, repair_start);
        timeline.repair_started_at = t0.elapsed();
        for (i, step) in rplan.steps.iter().enumerate() {
            // Phase 1: block this group's traffic to the victim, everywhere,
            // before any state moves.
            self.broadcast(|token| ControlCmd::InstallRule {
                failed_ip: victim,
                rule: step.block,
                token,
            });
            // Synchronise: pull the group's entries from every live donor
            // replica of each shard and push the union into the same shard's
            // replacement replica (shards own disjoint keys, so a group's
            // donors and replacement always pair up within one shard; the
            // per-key version registers arbitrate between donors).
            for &donor in &step.donors {
                for link in self.links.iter_mut() {
                    self.next_token += 1;
                    let token = self.next_token;
                    link.send(ControlCmd::ExportGroup {
                        ip: donor,
                        group: step.group,
                        modulus: rplan.modulus,
                        token,
                    });
                    let ControlEvt::Export { entries, .. } = link.wait(token) else {
                        unreachable!("ExportGroup is answered with Export");
                    };
                    self.next_token += 1;
                    let token = self.next_token;
                    link.send(ControlCmd::ImportEntries {
                        ip: replacement,
                        entries,
                        token,
                    });
                    link.wait(token);
                }
            }
            // The blocked window is the group's share of the sync budget
            // (the real copy above is fast; the budget models the paper's
            // measured switch-control-plane copy cost). Pacing is against
            // the absolute schedule, so control-channel overhead on a busy
            // machine eats into later budgets instead of accumulating drift.
            Self::sleep_until(t0, repair_start + per_group * (i as u32 + 1));
            // Phase 2: activate the replacement and atomically switch the
            // group over (redirect overrides the block it replaces). The
            // sequence is shared with the replay driver.
            let session = self.next_session;
            self.next_session += 1;
            for builder in control::activation_sequence(victim, replacement, session, step) {
                self.broadcast(&builder);
            }
            timeline.group_activations.push(t0.elapsed());
        }
        timeline.repair_finished_at = t0.elapsed();
        timeline.groups_repaired = rplan.steps.len();
        timeline
    }
}

/// Runs the fabric live under control: threads, rings, retrying clients,
/// time-sliced throughput accounting, and (optionally) a scripted failure
/// handled by the live controller. Returns after the run drains.
///
/// Observation windows are created internally, sized from `config.slice`;
/// use [`run_live_observed`] to share a [`WindowRegistry`] with an external
/// reader (a dashboard polling the same windows the detector judges).
pub fn run_live_controlled(config: LiveConfig) -> LiveReport {
    let windows = WindowRegistry::new(config.fabric.num_shards, OBSERVE_SLICES, config.slice);
    run_live_observed(config, windows)
}

/// [`run_live_controlled`] with caller-supplied observation windows: every
/// shard worker records its per-slice ops / blocked / queue depth into
/// `windows`, and a monitor thread runs the [`GrayFailureDetector`] over
/// each completed slice **and** a [`ShadowAuditor`] over every completed
/// trace the clients hand it, journaling anomalies and dumping the flight
/// recorder to the artifact dir when one fires. Consistency violations
/// surface as [`LiveAnomaly::Audit`] entries in `LiveReport::anomalies`.
pub fn run_live_observed(config: LiveConfig, windows: WindowRegistry) -> LiveReport {
    let fabric = config.fabric;
    assert_eq!(
        windows.num_shards(),
        fabric.num_shards,
        "one observation window per shard"
    );
    assert!(fabric.num_shards > 0 && fabric.num_clients > 0);
    assert!(
        fabric.ring_capacity >= config.workload.window,
        "rings must hold a full client window"
    );
    if let Some(script) = &config.script {
        assert!(
            script.repair_ends_at() < config.duration,
            "the fault script must finish inside the run: {:?} >= {:?}",
            script.repair_ends_at(),
            config.duration
        );
    }
    let ring_def = fabric.build_ring();
    let mut workload = config.workload;
    workload.ops_per_client = u64::MAX;
    let shards = build_shards(&fabric, &workload);

    // Dataplane rings, exactly as in `run_live`.
    let mut query_tx: Vec<Vec<Producer<Frame>>> =
        (0..fabric.num_clients).map(|_| Vec::new()).collect();
    let mut query_rx: Vec<Vec<Consumer<Frame>>> =
        (0..fabric.num_shards).map(|_| Vec::new()).collect();
    let mut reply_tx: Vec<Vec<Producer<Frame>>> =
        (0..fabric.num_shards).map(|_| Vec::new()).collect();
    let mut reply_rx: Vec<Vec<Consumer<Frame>>> =
        (0..fabric.num_clients).map(|_| Vec::new()).collect();
    for client_rings in query_tx.iter_mut() {
        for shard_rings in query_rx.iter_mut() {
            let (tx, rx) = spsc_ring::<Frame>(fabric.ring_capacity);
            client_rings.push(tx);
            shard_rings.push(rx);
        }
    }
    for shard_rings in reply_tx.iter_mut() {
        for client_rings in reply_rx.iter_mut() {
            let (tx, rx) = spsc_ring::<Frame>(fabric.ring_capacity);
            shard_rings.push(tx);
            client_rings.push(rx);
        }
    }
    // Control rings: one command/event pair per shard.
    let mut ctrl_links: Vec<ControllerLink> = Vec::new();
    let mut ctrl_cmd_rx: Vec<Consumer<ControlCmd>> = Vec::new();
    let mut ctrl_evt_tx: Vec<Producer<ControlEvt>> = Vec::new();
    for _ in 0..fabric.num_shards {
        let (cmd_tx, cmd_rx) = spsc_ring::<ControlCmd>(CONTROL_RING);
        let (evt_tx, evt_rx) = spsc_ring::<ControlEvt>(CONTROL_RING);
        ctrl_links.push(ControllerLink {
            tx: cmd_tx,
            rx: evt_rx,
        });
        ctrl_cmd_rx.push(cmd_rx);
        ctrl_evt_tx.push(evt_tx);
    }

    let done_clients = Arc::new(AtomicUsize::new(0));
    // Per-client exit flags: a client that hit its hard stop may leave
    // queries in its ingress rings; shards must not block forever pushing
    // replies nobody will drain.
    let client_done: Arc<Vec<AtomicBool>> = Arc::new(
        (0..fabric.num_clients)
            .map(|_| AtomicBool::new(false))
            .collect(),
    );
    let ctrl_done = Arc::new(AtomicBool::new(config.script.is_none()));
    let t0 = Instant::now();

    // Shard workers: dataplane bursts + control-command draining in between.
    let mut shard_handles = Vec::new();
    for (s, mut shard) in shards.into_iter().enumerate() {
        if fabric.trace.enabled {
            shard.enable_tracing(fabric.trace, t0);
        }
        let mut ingress = std::mem::take(&mut query_rx[s]);
        let mut egress = std::mem::take(&mut reply_tx[s]);
        let mut cmd_rx = ctrl_cmd_rx.remove(0);
        let mut evt_tx = ctrl_evt_tx.remove(0);
        let done = Arc::clone(&done_clients);
        let exited = Arc::clone(&client_done);
        let ctl_done = Arc::clone(&ctrl_done);
        let burst = fabric.burst;
        let num_clients = fabric.num_clients;
        let pin = fabric.pin_shards;
        let window = Arc::clone(windows.window(s));
        let slice_nanos = windows.slice_len().as_nanos().max(1) as u64;
        let handle = std::thread::Builder::new()
            .name(format!("livectl-shard-{s}"))
            .spawn(move || {
                if pin {
                    // Advisory, exactly as in `run_live`: a failed pin still
                    // runs the shard, merely unpinned.
                    let _ = netchain_fabric::pin_thread(s);
                }
                let mut frames: Vec<Frame> = Vec::with_capacity(burst);
                let mut replies = BatchEncoder::with_capacity(burst, 128);
                let mut last_blocked = 0u64;
                loop {
                    // Control plane first: commands take effect at burst
                    // boundaries, like table updates between pipeline passes.
                    while let Some(cmd) = cmd_rx.pop() {
                        let mut evt = Some(control::apply(&mut shard, cmd));
                        while let Some(e) = evt.take() {
                            match evt_tx.push(e) {
                                Ok(()) => break,
                                Err(back) => {
                                    evt = Some(back);
                                    std::thread::yield_now();
                                }
                            }
                        }
                    }
                    let mut any = false;
                    let mut slice_ops = 0u64;
                    let mut peak_depth = 0u64;
                    for c in 0..num_clients {
                        frames.clear();
                        let got = ingress[c].pop_batch(&mut frames, burst);
                        if got == 0 {
                            continue;
                        }
                        any = true;
                        peak_depth = peak_depth.max(got as u64);
                        replies.clear();
                        shard.process_burst(frames.iter().map(|f| f.as_bytes()), &mut replies);
                        slice_ops += replies.len() as u64;
                        for frame in replies.frames() {
                            let mut item =
                                Some(Frame::from_bytes(frame).expect("replies fit in a frame"));
                            loop {
                                match egress[c].push(item.take().expect("refilled on Err")) {
                                    Ok(()) => break,
                                    Err(back) => {
                                        if exited[c].load(Ordering::Acquire) {
                                            // The client gave up (hard stop)
                                            // with its reply ring full; the
                                            // reply has no reader any more.
                                            break;
                                        }
                                        item = Some(back);
                                        std::thread::yield_now();
                                    }
                                }
                            }
                        }
                    }
                    if any {
                        // Rolling-window accounting, once per busy burst
                        // round: additions on a hot slot, nothing the
                        // detector does can block this thread.
                        let slice = t0.elapsed().as_nanos() as u64 / slice_nanos;
                        window.add(slice, WindowChannel::Ops, slice_ops);
                        window.raise(slice, WindowChannel::QueueDepth, peak_depth);
                        let blocked = shard.stats().blocked;
                        if blocked > last_blocked {
                            window.add(slice, WindowChannel::Blocked, blocked - last_blocked);
                            last_blocked = blocked;
                        }
                    } else {
                        if done.load(Ordering::Acquire) == num_clients
                            && ctl_done.load(Ordering::Acquire)
                            && ingress.iter_mut().all(|r| r.is_empty_now())
                        {
                            break;
                        }
                        std::thread::yield_now();
                    }
                }
                (shard.id(), *shard.stats(), shard.take_traces())
            })
            .expect("spawn shard thread");
        shard_handles.push(handle);
    }

    // Completed traces stream from the clients to the monitor's shadow
    // auditor over an unbounded channel: clients never block on it, and the
    // monitor drains at its own slice cadence.
    let (audit_tx, audit_rx) = std::sync::mpsc::channel::<PacketTrace>();

    // Duration-driven, retrying, slice-accounting clients.
    let mut client_handles = Vec::new();
    for c in 0..fabric.num_clients {
        let mut tx = std::mem::take(&mut query_tx[c]);
        let mut rx = std::mem::take(&mut reply_rx[c]);
        let ring_clone = ring_def.clone();
        let done = Arc::clone(&done_clients);
        let exited = Arc::clone(&client_done);
        let audit_feed = audit_tx.clone();
        let cfg = config;
        let handle = std::thread::Builder::new()
            .name(format!("livectl-client-{c}"))
            .spawn(move || {
                let agent_config = AgentConfig::new(Ipv4Addr::for_host(c as u32))
                    .with_timeout(SimDuration::from_nanos(cfg.retry_timeout.as_nanos() as u64))
                    .with_max_retries(cfg.max_retries);
                let mut wl = cfg.workload;
                wl.ops_per_client = u64::MAX;
                let mut client =
                    ClientState::with_agent_config(c as u32, &ring_clone, wl, agent_config);
                if cfg.fabric.trace.enabled {
                    client.enable_tracing(cfg.fabric.trace);
                }
                let deadline = t0 + cfg.duration;
                let hard_stop = deadline + DRAIN_GRACE;
                let slice_nanos = cfg.slice.as_nanos() as u64;
                let mut slices = TimeSeries::new(slice_nanos);
                let mut pending: VecDeque<(usize, Frame)> = VecDeque::new();
                let mut reply_buf: Vec<Frame> = Vec::with_capacity(cfg.fabric.burst);
                let mut next_retry_poll = t0 + cfg.retry_timeout;
                loop {
                    let now = Instant::now();
                    let elapsed = now.duration_since(t0);
                    let now_st = SimTime(elapsed.as_nanos() as u64);
                    let mut progressed = false;
                    // Flush parked frames (issues and retransmits alike).
                    while let Some((s, frame)) = pending.pop_front() {
                        match tx[s].push(frame) {
                            Ok(()) => progressed = true,
                            Err(back) => {
                                pending.push_front((s, back));
                                break;
                            }
                        }
                    }
                    // Issue new work while the run is live.
                    while pending.is_empty() && now < deadline && client.can_issue() {
                        let pkt = client.issue_at(now_st);
                        let s = cfg.fabric.shard_of(&ring_clone, &pkt.netchain.key);
                        let frame = Frame::from_packet(&pkt).expect("queries fit in a frame");
                        match tx[s].push(frame) {
                            Ok(()) => progressed = true,
                            Err(back) => pending.push_back((s, back)),
                        }
                    }
                    // Drain replies into the current slice.
                    for shard_rx in rx.iter_mut() {
                        reply_buf.clear();
                        if shard_rx.pop_batch(&mut reply_buf, cfg.fabric.burst) > 0 {
                            progressed = true;
                            for frame in &reply_buf {
                                if client.absorb_reply_at(now_st, frame.as_bytes()) {
                                    slices.record(elapsed.as_nanos() as u64);
                                }
                            }
                        }
                    }
                    // Retransmission timers, and a trace hand-off to the
                    // shadow auditor at the same cadence (a closed channel
                    // just means the monitor has already gone home).
                    if now >= next_retry_poll {
                        next_retry_poll = now + cfg.retry_timeout / 2;
                        for trace in client.take_finished_traces() {
                            let _ = audit_feed.send(trace);
                        }
                        for pkt in client.poll_retries_at(now_st) {
                            let s = cfg.fabric.shard_of(&ring_clone, &pkt.netchain.key);
                            let frame = Frame::from_packet(&pkt).expect("queries fit in a frame");
                            match tx[s].push(frame) {
                                Ok(()) => progressed = true,
                                Err(back) => pending.push_back((s, back)),
                            }
                        }
                    }
                    if now >= deadline && client.outstanding() == 0 && pending.is_empty() {
                        break;
                    }
                    if now >= hard_stop {
                        // Outstanding queries could not be drained (should
                        // not happen: retries cover every transient drop).
                        break;
                    }
                    if !progressed {
                        std::thread::yield_now();
                    }
                }
                exited[c].store(true, Ordering::Release);
                done.fetch_add(1, Ordering::Release);
                // Final drain: everything that completed since the last poll
                // still reaches the auditor; what's left in `take_traces` is
                // the open (never-acked) remainder.
                for trace in client.take_finished_traces() {
                    let _ = audit_feed.send(trace);
                }
                let latency = client.latency_snapshot();
                let traces = client.take_traces();
                (client.report(), slices, latency, traces)
            })
            .expect("spawn client thread");
        client_handles.push(handle);
    }
    // The clients hold the only senders now; the channel closes itself once
    // the last one exits.
    drop(audit_tx);

    // The monitor: judges each completed window slice with the gray-failure
    // detector while the run is live, and runs the shadow auditor over every
    // completed trace the clients hand it. It only reads atomics the shard
    // workers publish, so it never perturbs the dataplane; on an anomaly it
    // journals the event and dumps its flight recorder to the artifact dir.
    let monitor_stop = Arc::new(AtomicBool::new(false));
    let monitor = {
        let windows = windows.clone();
        let stop = Arc::clone(&monitor_stop);
        let num_shards = fabric.num_shards;
        let slice_nanos = windows.slice_len().as_nanos().max(1) as u64;
        let nap = (windows.slice_len() / 2).max(Duration::from_micros(500));
        // The script's transitions are consistency no-man's-land: reads
        // issued while failover or repair rules are landing may legitimately
        // observe either side. Widen the scripted window by a few retry
        // rounds plus one slice so ops straddling the edges fall inside too.
        let suppress: Vec<(u64, u64)> = config
            .script
            .as_ref()
            .map(|script| {
                let slack = config.retry_timeout * 4 + config.slice;
                let start = script.kill_at.saturating_sub(slack);
                let end = script.repair_ends_at() + slack;
                vec![(start.as_nanos() as u64, end.as_nanos() as u64)]
            })
            .unwrap_or_default();
        std::thread::Builder::new()
            .name("livectl-monitor".to_string())
            .spawn(move || {
                let mut detector = GrayFailureDetector::new(num_shards, DetectorConfig::default());
                let mut shadow = ShadowAuditor::new(suppress);
                let mut audited: Vec<PacketTrace> = Vec::new();
                let mut journal = Journal::new();
                let recorder = FlightRecorder::new(FLIGHT_CAPACITY);
                let mut anomalies: Vec<LiveAnomaly> = Vec::new();
                let mut next = 0u64;
                loop {
                    let stopping = stop.load(Ordering::Acquire);
                    // Shadow audit first: ingest whatever completed since the
                    // last wake-up. The traces come back out of this thread
                    // so the report's merged trace set stays whole.
                    while let Ok(trace) = audit_rx.try_recv() {
                        shadow.ingest(&trace);
                        audited.push(trace);
                    }
                    for violation in shadow.take_violations() {
                        let at_ns = violation.at_ns;
                        journal.instant(format!("audit:{}", violation.kind.label()), at_ns);
                        recorder.record(
                            at_ns,
                            "audit.violation",
                            vec![("violation", violation.to_json())],
                        );
                        if let Some(path) = recorder.dump("livectl_audit") {
                            eprintln!(
                                "livectl: {} — flight dump at {}",
                                violation.describe(),
                                path.display()
                            );
                        }
                        anomalies.push(LiveAnomaly::Audit(violation));
                    }
                    // Judge slices strictly before the current one — the
                    // current slice is still filling and would read as a
                    // universal dip. On shutdown, judge the last one too.
                    let current = windows.slice_of(t0.elapsed());
                    let upto = if stopping { current + 1 } else { current };
                    while next < upto {
                        let slice = next;
                        next += 1;
                        let across = windows.slice_across_shards(slice);
                        let at_ns = slice * slice_nanos;
                        recorder.record(
                            at_ns,
                            "slice",
                            vec![(
                                "ops",
                                Json::Arr(
                                    across
                                        .iter()
                                        .map(|c| Json::U64(c[WindowChannel::Ops as usize]))
                                        .collect(),
                                ),
                            )],
                        );
                        for anomaly in detector.observe_slice(slice, &across) {
                            journal.instant(format!("gray-failure:shard{}", anomaly.shard), at_ns);
                            recorder.record(
                                at_ns,
                                "anomaly",
                                vec![("detail", Json::str(anomaly.describe()))],
                            );
                            if let Some(path) = recorder.dump("livectl_gray") {
                                eprintln!(
                                    "livectl: {} — flight dump at {}",
                                    anomaly.describe(),
                                    path.display()
                                );
                            }
                            anomalies.push(LiveAnomaly::Gray(anomaly));
                        }
                    }
                    if stopping {
                        break;
                    }
                    std::thread::sleep(nap);
                }
                (journal, anomalies, audited)
            })
            .expect("spawn monitor thread")
    };

    // The controller runs on this thread (it sleeps most of the time).
    let timeline = config.script.as_ref().map(|script| {
        let mut controller = LiveController {
            links: std::mem::take(&mut ctrl_links),
            ring: ring_def.clone(),
            spares: fabric.spare_ips(),
            next_token: 0,
            next_session: 1,
        };
        let timeline = controller.run(script, t0);
        ctrl_done.store(true, Ordering::Release);
        timeline
    });

    let mut slices = TimeSeries::new(config.slice.as_nanos() as u64);
    let mut clients = Vec::new();
    let mut latency = HistSnapshot::empty();
    let mut trace_fragments = Vec::new();
    for handle in client_handles {
        let (report, client_slices, client_latency, traces) =
            handle.join().expect("client thread panicked");
        clients.push(report);
        slices.merge(&client_slices);
        latency.merge(&client_latency);
        trace_fragments.extend(traces);
    }
    let elapsed = t0.elapsed();
    let mut shard_stats = vec![Default::default(); fabric.num_shards];
    for handle in shard_handles {
        let (id, stats, traces) = handle.join().expect("shard thread panicked");
        shard_stats[id] = stats;
        trace_fragments.extend(traces);
    }
    // All window writers have exited; let the monitor judge the final slice
    // and hand back its journal.
    monitor_stop.store(true, Ordering::Release);
    let (ops_journal, anomalies, audited_traces) = monitor.join().expect("monitor thread panicked");
    // Completed traces detoured through the auditor; fold them back in so
    // the merged trace set is exactly what an unaudited run would report.
    trace_fragments.extend(audited_traces);
    let completed_ops: u64 = clients.iter().map(|c| c.completed).sum();
    LiveReport {
        elapsed,
        slice: config.slice,
        slices: slices.counts().to_vec(),
        completed_ops,
        ops_per_sec: completed_ops as f64 / elapsed.as_secs_f64().max(1e-12),
        clients,
        shards: shard_stats,
        latency,
        traces: merge_traces(trace_fragments),
        timeline,
        anomalies,
        ops_journal,
    }
}
