//! Reports for live-controlled runs: the time-sliced throughput series and
//! the controller's phase timeline.

use crate::detector::Anomaly;
use netchain_fabric::{ClientReport, ShardStats};
use netchain_telemetry::{HistSnapshot, Journal, PacketTrace, TraceSummary, Violation};
use std::time::Duration;

/// Anything the live monitor flagged during the run: a statistical gray
/// failure (one shard quietly degrading) or a consistency violation the
/// shadow auditor caught in the sampled trace stream. Both also produce
/// flight-recorder dumps in the artifact dir.
#[derive(Debug, Clone)]
pub enum LiveAnomaly {
    /// A gray-failure verdict from the [`crate::GrayFailureDetector`].
    Gray(Anomaly),
    /// A chain-invariant violation from the online
    /// [`netchain_telemetry::ShadowAuditor`].
    Audit(Violation),
}

impl LiveAnomaly {
    /// One-line human description.
    pub fn describe(&self) -> String {
        match self {
            LiveAnomaly::Gray(a) => a.describe(),
            LiveAnomaly::Audit(v) => v.describe(),
        }
    }

    /// True for shadow-auditor consistency violations.
    pub fn is_audit(&self) -> bool {
        matches!(self, LiveAnomaly::Audit(_))
    }
}

/// When each control-plane phase happened, as offsets from run start, plus
/// the measured rule-installation latency.
#[derive(Debug, Clone, Default)]
pub struct FailoverTimeline {
    /// When the victim was killed on every shard.
    pub killed_at: Duration,
    /// When the controller started installing fast-failover rules (kill +
    /// detection delay).
    pub failover_started_at: Duration,
    /// When every shard had acknowledged the fast-failover rules and session
    /// bumps — the dataplane is rerouting from this instant.
    pub failover_installed_at: Duration,
    /// `failover_installed_at - failover_started_at`: the measured failover
    /// programming time (the paper's sub-millisecond claim, measured here
    /// against the software fabric's control channel).
    pub failover_install_time: Duration,
    /// When chain repair started (first group blocked).
    pub repair_started_at: Duration,
    /// When the last group was activated.
    pub repair_finished_at: Duration,
    /// Per-group activation instants, in repair order.
    pub group_activations: Vec<Duration>,
    /// Number of groups repaired.
    pub groups_repaired: usize,
}

impl FailoverTimeline {
    /// The timeline as a telemetry [`Journal`]: the same phase structure the
    /// simulated controller records, so live and simulated runs export
    /// comparable span records.
    pub fn journal(&self) -> Journal {
        let mut journal = Journal::default();
        journal.instant("killed", self.killed_at.as_nanos() as u64);
        journal.span(
            "fast-failover",
            self.failover_started_at.as_nanos() as u64,
            self.failover_installed_at.as_nanos() as u64,
        );
        journal.span(
            "repair",
            self.repair_started_at.as_nanos() as u64,
            self.repair_finished_at.as_nanos() as u64,
        );
        for (i, at) in self.group_activations.iter().enumerate() {
            journal.instant(format!("activate-group:{i}"), at.as_nanos() as u64);
        }
        journal
    }
}

/// The result of a live-controlled run.
#[derive(Debug, Clone, Default)]
pub struct LiveReport {
    /// Wall-clock duration of the run.
    pub elapsed: Duration,
    /// Width of one throughput slice.
    pub slice: Duration,
    /// Completed operations per slice, summed over clients (index 0 starts
    /// at run start).
    pub slices: Vec<u64>,
    /// Total operations completed (replies matched).
    pub completed_ops: u64,
    /// Aggregate completed operations per wall-clock second.
    pub ops_per_sec: f64,
    /// Per-client counters.
    pub clients: Vec<ClientReport>,
    /// Per-shard dataplane counters.
    pub shards: Vec<ShardStats>,
    /// Issue→reply latency distribution, merged over clients (real
    /// wall-clock nanoseconds; the live runner feeds the timed client API).
    pub latency: HistSnapshot,
    /// Merged in-band per-hop traces (client + shard fragments), when
    /// tracing was enabled in the fabric config.
    pub traces: Vec<PacketTrace>,
    /// The controller's phase timeline (present when a fault script ran).
    pub timeline: Option<FailoverTimeline>,
    /// Everything the live monitor flagged — gray failures and shadow-audit
    /// consistency violations (empty in a healthy run; each one also
    /// produced a flight-recorder dump in the artifact dir).
    pub anomalies: Vec<LiveAnomaly>,
    /// The monitor's journal: one instant per flagged anomaly.
    pub ops_journal: Journal,
}

impl LiveReport {
    /// The throughput series as `(slice midpoint in seconds, ops/sec)`
    /// points, ready for `netchain_experiments::Series`.
    pub fn rate_series(&self) -> Vec<(f64, f64)> {
        let w = self.slice.as_secs_f64();
        self.slices
            .iter()
            .enumerate()
            .map(|(i, &n)| (w * (i as f64 + 0.5), n as f64 / w))
            .collect()
    }

    /// Mean throughput (ops/sec) over `[from, to)` offsets from run start,
    /// counting only slices that lie entirely inside the window.
    pub fn mean_rate(&self, from: Duration, to: Duration) -> f64 {
        let w = self.slice.as_nanos().max(1);
        let lo = (from.as_nanos().div_ceil(w)) as usize;
        let hi = ((to.as_nanos() / w) as usize).min(self.slices.len());
        if lo >= hi {
            return 0.0;
        }
        let total: u64 = self.slices[lo..hi].iter().sum();
        total as f64 / ((hi - lo) as f64 * self.slice.as_secs_f64())
    }

    /// Total retransmissions across clients (the visible cost of the dip).
    pub fn total_retries(&self) -> u64 {
        self.clients.iter().map(|c| c.retries).sum()
    }

    /// Total abandoned queries across clients (must be zero in a healthy
    /// run — every op eventually completes through failover and repair).
    pub fn total_abandoned(&self) -> u64 {
        self.clients.iter().map(|c| c.abandoned).sum()
    }

    /// Total version regressions observed by clients (must be zero: replies
    /// never travel backwards in chain version).
    pub fn total_version_regressions(&self) -> u64 {
        self.clients.iter().map(|c| c.version_regressions).sum()
    }

    /// Queries dropped for lack of a route, summed over shards (nonzero
    /// during the window between a kill and the failover rules landing).
    pub fn total_unroutable(&self) -> u64 {
        self.shards.iter().map(|s| s.unroutable).sum()
    }

    /// Writes bounced off blocked groups during repair, summed over shards.
    pub fn total_blocked(&self) -> u64 {
        self.shards.iter().map(|s| s.blocked).sum()
    }

    /// Aggregates the recorded traces into per-path counts and per-hop
    /// latency transitions.
    pub fn trace_summary(&self) -> TraceSummary {
        TraceSummary::from_traces(&self.traces)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rate_series_and_window_means() {
        let report = LiveReport {
            slice: Duration::from_millis(100),
            slices: vec![10, 20, 30, 40],
            ..Default::default()
        };
        let series = report.rate_series();
        assert_eq!(series.len(), 4);
        assert!((series[0].0 - 0.05).abs() < 1e-9);
        assert!((series[0].1 - 100.0).abs() < 1e-9);
        // Slices 1 and 2 average (20 + 30) / 0.2s.
        let mean = report.mean_rate(Duration::from_millis(100), Duration::from_millis(300));
        assert!((mean - 250.0).abs() < 1e-9, "{mean}");
        assert_eq!(
            report.mean_rate(Duration::from_millis(150), Duration::from_millis(180)),
            0.0
        );
    }
}
