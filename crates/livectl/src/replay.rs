//! A deterministic, single-threaded driver for the controlled fabric: the
//! same shards, the same control commands ([`crate::control::apply`]), the
//! same shared failover/recovery plans — but ops and control steps execute
//! synchronously, one at a time, under the test's explicit sequencing.
//!
//! This is what the differential test runs against the discrete-event
//! simulator (identical planners + identical command interpretation ⇒ the
//! two executions must produce identical replies and switch state), and what
//! the chain-repair property test drives through proptest-chosen failure
//! timings.

use crate::control::{self, ControlCmd, ControlEvt};
use netchain_core::failplan::{FailoverPlan, RecoveryPlan};
use netchain_core::{AgentConfig, AgentCore, ChainDirectory, CompletedQuery, HashRing, KvOp};
use netchain_fabric::{shard_of_key, Shard};
use netchain_sim::{SimDuration, SimTime};
use netchain_switch::kv::ExportedEntry;
use netchain_switch::PipelineConfig;
use netchain_wire::{BatchEncoder, Ipv4Addr, Key, PacketView, Value};

/// The deterministic controlled fabric.
pub struct ReplayFabric {
    ring: HashRing,
    num_shards: usize,
    shards: Vec<Shard>,
    agent: AgentCore,
    replies: BatchEncoder,
    clock: u64,
    next_session: u64,
    recovery: Option<RecoveryState>,
}

struct RecoveryState {
    plan: RecoveryPlan,
    /// Index of the next step to block.
    next: usize,
    /// Index of the currently blocked (mid-repair) step, if any.
    blocked: Option<usize>,
}

impl ReplayFabric {
    /// Builds a replay fabric over `ring`, partitioned into `num_shards`,
    /// with the given pipeline geometry, spare switches and client agent
    /// configuration.
    pub fn new(
        ring: HashRing,
        num_shards: usize,
        pipeline: PipelineConfig,
        spares: &[Ipv4Addr],
        agent_config: AgentConfig,
    ) -> Self {
        let shards: Vec<Shard> = (0..num_shards)
            .map(|i| Shard::with_spares(i, num_shards, ring.clone(), pipeline, spares))
            .collect();
        let agent = AgentCore::new(agent_config, ChainDirectory::new(ring.clone()));
        ReplayFabric {
            ring,
            num_shards,
            shards,
            agent,
            replies: BatchEncoder::new(),
            clock: 0,
            next_session: 1,
            recovery: None,
        }
    }

    /// The ring in use.
    pub fn ring(&self) -> &HashRing {
        &self.ring
    }

    /// The client agent (stats, outstanding).
    pub fn agent(&self) -> &AgentCore {
        &self.agent
    }

    /// Replaces the client agent (phased differential tests pair each phase
    /// with a fresh agent, mirroring a freshly installed simulator client).
    pub fn reset_agent(&mut self, config: AgentConfig) {
        self.agent = AgentCore::new(config, ChainDirectory::new(self.ring.clone()));
    }

    /// Pre-populates `key` on every switch of its chain.
    pub fn populate(&mut self, key: Key, value: &Value) {
        let s = shard_of_key(&self.ring, &key, self.num_shards);
        self.shards[s].populate(key, value);
    }

    /// Read access to the shards (state comparisons).
    pub fn shards(&self) -> &[Shard] {
        &self.shards
    }

    /// The union of every shard's replica state for switch `ip`, sorted by
    /// key (shards partition the keyspace, so the union is disjoint).
    pub fn switch_state(&self, ip: Ipv4Addr) -> Vec<ExportedEntry> {
        let mut entries: Vec<ExportedEntry> = self
            .shards
            .iter()
            .filter_map(|s| s.switch(ip))
            .flat_map(|sw| sw.kv().export_entries())
            .collect();
        entries.sort_by_key(|e| e.key);
        entries
    }

    fn apply_all(&mut self, cmd: impl Fn() -> ControlCmd) {
        for shard in &mut self.shards {
            let evt = control::apply(shard, cmd());
            debug_assert!(matches!(evt, ControlEvt::Ack { .. }));
        }
    }

    /// Executes one op end to end: build the query, run it through the
    /// owning shard, absorb the reply. Returns the completed query — with
    /// `status: None` if the dataplane dropped it (dead switch without
    /// rules, blocked group) and the retry budget ran out.
    pub fn exec(&mut self, op: KvOp) -> CompletedQuery {
        self.clock += 1;
        let key = op.key();
        let (request_id, pkt) = self.agent.begin(SimTime(self.clock), op);
        let frame = pkt.to_bytes();
        let s = shard_of_key(&self.ring, &key, self.num_shards);
        self.replies.clear();
        self.shards[s].process_burst(std::iter::once(frame.as_slice()), &mut self.replies);
        for i in 0..self.replies.len() {
            let reply = PacketView::parse(self.replies.frame(i))
                .expect("fabric replies parse")
                .to_owned();
            self.clock += 1;
            if let Some(done) = self.agent.on_reply(SimTime(self.clock), &reply) {
                assert_eq!(done.request_id, request_id);
                return done;
            }
        }
        // No reply: exhaust the retry budget. Replay state is frozen between
        // retries, so retransmitting would repeat the identical outcome;
        // advance the clock instead until the agent abandons the query.
        let timeout = self.agent.config().timeout;
        let max_retries = self.agent.config().max_retries;
        for _ in 0..=max_retries {
            self.clock += timeout.as_nanos().max(1);
            let outcome = self.agent.poll_retries(SimTime(self.clock));
            if let Some(abandoned) = outcome.abandoned.into_iter().next() {
                assert_eq!(abandoned.request_id, request_id);
                return abandoned;
            }
        }
        unreachable!("the retry budget is finite");
    }

    // ---- Control-plane verbs, mirroring the live controller exactly ----

    /// Fault injection: fail-stop `victim` on every shard.
    pub fn kill(&mut self, victim: Ipv4Addr) {
        self.apply_all(|| ControlCmd::KillSwitch {
            ip: victim,
            token: 0,
        });
    }

    /// Algorithm 2: install fast-failover rules everywhere and bump the
    /// session of every new chain head, executing the same command sequence
    /// as the threaded controller ([`control::failover_sequence`]).
    pub fn fast_failover(&mut self, victim: Ipv4Addr) {
        let plan = FailoverPlan::compute(&self.ring, victim);
        for builder in control::failover_sequence(&plan, self.next_session) {
            let cmd = builder(0);
            self.apply_all(|| cmd.clone());
        }
        self.next_session += plan.new_heads.len() as u64;
    }

    /// Plans recovery of `victim` onto `replacement`; returns the number of
    /// repair steps. Steps are then driven by [`Self::block_next_group`] /
    /// [`Self::finish_blocked_group`] (or [`Self::repair_all`]).
    pub fn start_recovery(
        &mut self,
        victim: Ipv4Addr,
        replacement: Ipv4Addr,
        recovery_groups: Option<u32>,
    ) -> usize {
        let plan = RecoveryPlan::compute(
            &self.ring,
            victim,
            replacement,
            recovery_groups,
            &std::collections::HashSet::from([victim]),
        );
        let steps = plan.steps.len();
        self.recovery = Some(RecoveryState {
            plan,
            next: 0,
            blocked: None,
        });
        steps
    }

    /// The currently blocked `(group, modulus)`, if a repair step is between
    /// its block and activate phases.
    pub fn blocked_group(&self) -> Option<(u32, u32)> {
        let recovery = self.recovery.as_ref()?;
        let idx = recovery.blocked?;
        Some((recovery.plan.steps[idx].group, recovery.plan.modulus))
    }

    /// True if `key` falls in the currently blocked group.
    pub fn is_key_blocked(&self, key: &Key) -> bool {
        self.blocked_group().is_some_and(|(group, modulus)| {
            (key.stable_hash() % u64::from(modulus.max(1))) as u32 == group
        })
    }

    /// Phase 1 of the next repair step: block the group's traffic to the
    /// victim on every shard. Returns the blocked group, or `None` if repair
    /// is complete or a step is already blocked.
    pub fn block_next_group(&mut self) -> Option<u32> {
        let recovery = self.recovery.as_mut()?;
        if recovery.blocked.is_some() || recovery.next >= recovery.plan.steps.len() {
            return None;
        }
        let idx = recovery.next;
        let victim = recovery.plan.failed_ip;
        let step = recovery.plan.steps[idx].clone();
        recovery.blocked = Some(idx);
        self.apply_all(|| ControlCmd::InstallRule {
            failed_ip: victim,
            rule: step.block,
            token: 0,
        });
        Some(step.group)
    }

    /// Synchronise + phase 2 of the blocked step: copy the group's state
    /// from the donor to the replacement on every shard, activate the
    /// replacement (with a fresh session), install the redirect and drop the
    /// block. Returns the activated group.
    pub fn finish_blocked_group(&mut self) -> Option<u32> {
        let recovery = self.recovery.as_mut()?;
        let idx = recovery.blocked.take()?;
        recovery.next = idx + 1;
        let victim = recovery.plan.failed_ip;
        let replacement = recovery.plan.replacement_ip;
        let modulus = recovery.plan.modulus;
        let step = recovery.plan.steps[idx].clone();
        for &donor in &step.donors {
            for shard in &mut self.shards {
                let evt = control::apply(
                    shard,
                    ControlCmd::ExportGroup {
                        ip: donor,
                        group: step.group,
                        modulus,
                        token: 0,
                    },
                );
                let ControlEvt::Export { entries, .. } = evt else {
                    unreachable!("ExportGroup answers with Export");
                };
                let evt = control::apply(
                    shard,
                    ControlCmd::ImportEntries {
                        ip: replacement,
                        entries,
                        token: 0,
                    },
                );
                debug_assert!(matches!(evt, ControlEvt::Ack { .. }));
            }
        }
        let session = self.next_session;
        self.next_session += 1;
        for builder in control::activation_sequence(victim, replacement, session, &step) {
            let cmd = builder(0);
            self.apply_all(|| cmd.clone());
        }
        Some(step.group)
    }

    /// Runs every remaining repair step to completion (finishing a group the
    /// caller left mid-block first).
    pub fn repair_all(&mut self) {
        self.finish_blocked_group();
        while self.block_next_group().is_some() {
            self.finish_blocked_group();
        }
    }

    /// True once every planned repair step has been activated.
    pub fn repair_complete(&self) -> bool {
        self.recovery
            .as_ref()
            .is_some_and(|r| r.blocked.is_none() && r.next >= r.plan.steps.len())
    }
}

/// A convenient default agent configuration for replay tests: 1 ms timeout,
/// small retry budget (retries cannot change a frozen replay's outcome).
pub fn replay_agent_config(client: u32) -> AgentConfig {
    AgentConfig::new(Ipv4Addr::for_host(client))
        .with_timeout(SimDuration::from_millis(1))
        .with_max_retries(2)
}

#[cfg(test)]
mod tests {
    use super::*;
    use netchain_wire::QueryStatus;

    fn fabric() -> ReplayFabric {
        let ring = HashRing::new((0..3).map(Ipv4Addr::for_switch).collect(), 8, 3, 7);
        ReplayFabric::new(
            ring,
            2,
            PipelineConfig::tiny(256),
            &[Ipv4Addr::for_switch(3)],
            replay_agent_config(0),
        )
    }

    #[test]
    fn write_survives_kill_failover_and_repair() {
        let mut fabric = fabric();
        let key = Key::from_name("replay/key");
        fabric.populate(key, &Value::from_u64(0));
        let done = fabric.exec(KvOp::Write(key, Value::from_u64(41)));
        assert_eq!(done.status, Some(QueryStatus::Ok));

        let victim = fabric.ring().chain_for_key(&key).head();
        fabric.kill(victim);
        // Before failover rules: queries towards the victim vanish.
        let dropped = fabric.exec(KvOp::Write(key, Value::from_u64(42)));
        assert_eq!(dropped.status, None, "no rules yet: the query is lost");

        fabric.fast_failover(victim);
        let done = fabric.exec(KvOp::Write(key, Value::from_u64(43)));
        assert_eq!(done.status, Some(QueryStatus::Ok));
        let read = fabric.exec(KvOp::Read(key));
        assert_eq!(read.value.as_u64(), Some(43));

        let spare = Ipv4Addr::for_switch(3);
        let steps = fabric.start_recovery(victim, spare, Some(4));
        assert_eq!(steps, 4);
        // While the key's group is blocked, a write to it is lost; once the
        // group activates, it completes against the repaired chain.
        fabric.repair_all();
        assert!(fabric.repair_complete());
        let done = fabric.exec(KvOp::Write(key, Value::from_u64(44)));
        assert_eq!(done.status, Some(QueryStatus::Ok));
        let read = fabric.exec(KvOp::Read(key));
        assert_eq!(read.value.as_u64(), Some(44));
        // The spare now holds the key's group state.
        let spare_state = fabric.switch_state(spare);
        assert!(spare_state.iter().any(|e| e.key == key));
        assert_eq!(fabric.agent().stats().version_regressions, 0);
    }

    #[test]
    fn blocked_group_queries_are_lost_until_activation() {
        let mut fabric = fabric();
        let key = Key::from_name("replay/blocked");
        fabric.populate(key, &Value::from_u64(7));
        let victim = fabric.ring().chain_for_key(&key).tail();
        fabric.kill(victim);
        fabric.fast_failover(victim);
        let spare = Ipv4Addr::for_switch(3);
        fabric.start_recovery(victim, spare, Some(1));
        let group = fabric.block_next_group().expect("one step");
        assert_eq!(group, 0);
        assert!(fabric.is_key_blocked(&key), "modulus 1 blocks every key");
        // A read towards the dead tail is blocked, not served stale.
        let read = fabric.exec(KvOp::Read(key));
        assert_eq!(read.status, None);
        fabric.finish_blocked_group();
        let read = fabric.exec(KvOp::Read(key));
        assert_eq!(read.status, Some(QueryStatus::Ok));
        assert_eq!(read.value.as_u64(), Some(7));
    }
}
