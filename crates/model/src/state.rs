//! The protocol model: state, enabled actions, and transitions.
//!
//! This is a direct port of the paper's TLA+ specification. Switch memory
//! stores a `(value, version)` pair per key; the chain head assigns versions;
//! replicas apply only newer versions; channels are unreliable (drop,
//! duplicate, reorder); switches fail-stop and are later "recovered" by
//! pointing their forwarding at a spare switch whose memory is copied from a
//! live chain member — the abstract form of the controller's failover and
//! recovery procedures.

use std::collections::BTreeMap;

/// Bounds of the model (the TLA+ `CONSTANTS`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ModelConfig {
    /// Number of switches in the chain.
    pub chain_len: usize,
    /// Number of spare switches available to recovery.
    pub spares: usize,
    /// Number of keys.
    pub keys: usize,
    /// Number of distinct write values (1..=values).
    pub values: u8,
    /// Maximum channel length explored.
    pub max_queue: usize,
    /// Maximum number of switch failures.
    pub max_failures: usize,
    /// Maximum version number explored (bounds client writes).
    pub max_version: u64,
    /// Maximum number of adversarial channel operations (drop/dup/reorder).
    pub max_channel_ops: usize,
}

impl Default for ModelConfig {
    fn default() -> Self {
        ModelConfig {
            chain_len: 3,
            spares: 1,
            keys: 1,
            values: 2,
            max_queue: 2,
            max_failures: 1,
            max_version: 3,
            max_channel_ops: 2,
        }
    }
}

impl ModelConfig {
    /// Total switches (chain plus spares).
    pub fn num_switches(&self) -> usize {
        self.chain_len + self.spares
    }
}

/// A protocol participant: a switch or the (single, merged) client.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum NodeRef {
    /// Switch by index.
    Switch(usize),
    /// The client endpoint (models any number of outstanding client
    /// requests, as in the TLA+ spec).
    Client,
}

/// Liveness status of a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SwitchStatus {
    /// Processing queries normally.
    Alive,
    /// Fail-stopped; traffic destined to it is redirected by its neighbours
    /// (modelled as forwarding pointers).
    Failed,
    /// Recovered: a spare switch has absorbed its role; traffic forwards to
    /// the spare.
    Recovered,
}

/// A protocol message.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Msg {
    /// A read query for `key`; `hops` is the remaining chain (reverse order),
    /// used only for failure handling.
    Read {
        /// The key.
        key: usize,
        /// Remaining hops.
        hops: Vec<usize>,
    },
    /// A write query.
    Write {
        /// The key.
        key: usize,
        /// The value being written.
        val: u8,
        /// The version; 0 until the head assigns one.
        ver: u64,
        /// Remaining hops (head to tail).
        hops: Vec<usize>,
    },
    /// A reply to the client.
    Reply {
        /// The key.
        key: usize,
        /// The value exposed.
        val: u8,
        /// The version exposed.
        ver: u64,
    },
}

/// One enabled transition of the model.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum Action {
    /// The client sends a read for `key` to the chain tail.
    ClientSendRead {
        /// The key.
        key: usize,
    },
    /// The client sends a write of `val` to `key` to the chain head.
    ClientSendWrite {
        /// The key.
        key: usize,
        /// The value.
        val: u8,
    },
    /// The client consumes the oldest reply in its inbox. Replies are kept
    /// in the order the chain *generated* them (a single logical inbox):
    /// §4.5's claim is that the versions the chain exposes are monotonically
    /// increasing, and delivery skew between concurrent clients is a
    /// client-side artifact, not a chain property, so the inbox is not
    /// subject to adversarial reordering (drops and duplicates still are,
    /// via the channels feeding it).
    ClientRecv,
    /// Switch `switch` processes the message at the head of the channel from
    /// `from` (receive + process fused; the fusion only removes interleavings
    /// in which a buffered message sits inside a switch, which cannot affect
    /// the two safety properties because a buffered message is
    /// indistinguishable from one still in the channel).
    SwitchProcess {
        /// The processing switch.
        switch: usize,
        /// The upstream endpoint.
        from: NodeRef,
    },
    /// The channel `from → to` drops its head message.
    ChannelDrop {
        /// Source endpoint.
        from: NodeRef,
        /// Destination endpoint.
        to: NodeRef,
    },
    /// The channel duplicates its head message (appends a copy).
    ChannelDuplicate {
        /// Source endpoint.
        from: NodeRef,
        /// Destination endpoint.
        to: NodeRef,
    },
    /// The channel reorders (moves its head message to the back).
    ChannelReorder {
        /// Source endpoint.
        from: NodeRef,
        /// Destination endpoint.
        to: NodeRef,
    },
    /// Switch `switch` fail-stops.
    SwitchFail {
        /// The failing switch.
        switch: usize,
    },
    /// The failed switch `switch` is recovered onto spare `spare`.
    SwitchRecover {
        /// The failed switch.
        switch: usize,
        /// The spare absorbing its role.
        spare: usize,
    },
}

/// The full model state.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelState {
    /// Per-switch, per-key `(value, version)`; value 0 means "no value".
    pub mem: Vec<Vec<(u8, u64)>>,
    /// Per-switch status.
    pub status: Vec<SwitchStatus>,
    /// Where a failed/recovered switch forwards reads (towards the head).
    pub read_fwd: Vec<Option<NodeRef>>,
    /// Where a failed/recovered switch forwards writes (towards the tail).
    pub write_fwd: Vec<Option<NodeRef>>,
    /// Channels between endpoints (FIFO, but adversarial actions may reorder).
    pub channels: BTreeMap<(NodeRef, NodeRef), Vec<Msg>>,
    /// Replies to the client, in generation order (see [`Action::ClientRecv`]).
    pub client_inbox: Vec<Msg>,
    /// Last key-values observed by the client (per key).
    pub prev_kv: Vec<(u8, u64)>,
    /// Current key-values observed by the client (per key).
    pub curr_kv: Vec<(u8, u64)>,
    /// Failures so far.
    pub failed_count: usize,
    /// Adversarial channel operations so far.
    pub channel_ops: usize,
    /// Client writes issued so far (bounds the version space).
    pub writes_issued: u64,
}

impl ModelState {
    /// The initial state for `config`.
    pub fn initial(config: &ModelConfig) -> Self {
        ModelState {
            mem: vec![vec![(0, 0); config.keys]; config.num_switches()],
            status: vec![SwitchStatus::Alive; config.num_switches()],
            read_fwd: vec![None; config.num_switches()],
            write_fwd: vec![None; config.num_switches()],
            channels: BTreeMap::new(),
            client_inbox: Vec::new(),
            prev_kv: vec![(0, 0); config.keys],
            curr_kv: vec![(0, 0); config.keys],
            failed_count: 0,
            channel_ops: 0,
            writes_issued: 0,
        }
    }

    fn channel(&self, from: NodeRef, to: NodeRef) -> &[Msg] {
        self.channels
            .get(&(from, to))
            .map(Vec::as_slice)
            .unwrap_or(&[])
    }

    fn push(&mut self, from: NodeRef, to: NodeRef, msg: Msg) {
        self.channels.entry((from, to)).or_default().push(msg);
    }

    fn push_reply(&mut self, msg: Msg) {
        self.client_inbox.push(msg);
    }

    fn pop(&mut self, from: NodeRef, to: NodeRef) -> Option<Msg> {
        let queue = self.channels.get_mut(&(from, to))?;
        if queue.is_empty() {
            return None;
        }
        let msg = queue.remove(0);
        if queue.is_empty() {
            self.channels.remove(&(from, to));
        }
        Some(msg)
    }

    /// The chain as switch indices, head first.
    pub fn chain(config: &ModelConfig) -> Vec<usize> {
        (0..config.chain_len).collect()
    }

    /// Resolves a chain member to the endpoint that currently plays its role:
    /// itself if alive, its recovery target if recovered, `Client` (meaning
    /// "gone") if failed and not recovered. Mirrors the TLA+ helper used by
    /// `UpdatePropagation`.
    pub fn effective(&self, switch: usize) -> NodeRef {
        match self.status[switch] {
            SwitchStatus::Alive => NodeRef::Switch(switch),
            SwitchStatus::Recovered => self.write_fwd[switch].unwrap_or(NodeRef::Client),
            SwitchStatus::Failed => NodeRef::Client,
        }
    }

    /// The **Consistency** invariant: client-observed versions never regress.
    pub fn consistency_holds(&self) -> bool {
        self.prev_kv
            .iter()
            .zip(&self.curr_kv)
            .all(|(prev, curr)| prev.1 <= curr.1)
    }

    /// The **UpdatePropagation** invariant (Invariant 1): for any two chain
    /// positions `i < j`, the version stored at the (effective) switch for
    /// `i` is at least the version at the (effective) switch for `j`.
    pub fn update_propagation_holds(&self, config: &ModelConfig) -> bool {
        let chain = Self::chain(config);
        for key in 0..config.keys {
            for (a, &up) in chain.iter().enumerate() {
                for &down in chain.iter().skip(a + 1) {
                    let (up_node, down_node) = (self.effective(up), self.effective(down));
                    let (NodeRef::Switch(u), NodeRef::Switch(d)) = (up_node, down_node) else {
                        continue; // a failed, unrecovered member is exempt
                    };
                    if self.mem[u][key].1 < self.mem[d][key].1 {
                        return false;
                    }
                }
            }
        }
        true
    }

    /// Every enabled action in this state under `config`.
    pub fn enabled_actions(&self, config: &ModelConfig) -> Vec<Action> {
        let mut actions = Vec::new();
        let chain = Self::chain(config);
        let tail = *chain.last().expect("chains are non-empty");
        let client_can_queue =
            |to: NodeRef| self.channel(NodeRef::Client, to).len() < config.max_queue;
        // Bounding the client inbox keeps the explored state space finite:
        // the client stops issuing queries while it has unconsumed replies
        // beyond the queue bound (the TLA+ spec achieves the same effect with
        // its qConstraint state constraint).
        let inbox_ok = self.client_inbox.len() < config.max_queue;

        // Client sends.
        for key in 0..config.keys {
            if inbox_ok && client_can_queue(NodeRef::Switch(tail)) {
                actions.push(Action::ClientSendRead { key });
            }
            if inbox_ok
                && self.writes_issued < config.max_version
                && client_can_queue(NodeRef::Switch(chain[0]))
            {
                for val in 1..=config.values {
                    actions.push(Action::ClientSendWrite { key, val });
                }
            }
        }
        // Client receives.
        if !self.client_inbox.is_empty() {
            actions.push(Action::ClientRecv);
        }
        // Switch processing: any non-empty channel into a switch.
        for s in 0..config.num_switches() {
            let sources: Vec<NodeRef> = (0..config.num_switches())
                .map(NodeRef::Switch)
                .chain([NodeRef::Client])
                .collect();
            for from in sources {
                if from != NodeRef::Switch(s) && !self.channel(from, NodeRef::Switch(s)).is_empty()
                {
                    actions.push(Action::SwitchProcess { switch: s, from });
                }
            }
        }
        // Adversarial channel operations.
        if self.channel_ops < config.max_channel_ops {
            for (&(from, to), queue) in &self.channels {
                if queue.is_empty() {
                    continue;
                }
                actions.push(Action::ChannelDrop { from, to });
                if queue.len() < config.max_queue {
                    actions.push(Action::ChannelDuplicate { from, to });
                }
                if queue.len() > 1 {
                    actions.push(Action::ChannelReorder { from, to });
                }
            }
        }
        // Failures.
        if self.failed_count < config.max_failures {
            for &s in &chain {
                if self.status[s] == SwitchStatus::Alive {
                    actions.push(Action::SwitchFail { switch: s });
                }
            }
        }
        // Recoveries.
        for &s in &chain {
            if self.status[s] == SwitchStatus::Failed {
                for spare in config.chain_len..config.num_switches() {
                    let spare_in_use = (0..config.num_switches())
                        .any(|x| self.write_fwd[x] == Some(NodeRef::Switch(spare)));
                    if !spare_in_use {
                        actions.push(Action::SwitchRecover { switch: s, spare });
                    }
                }
            }
        }
        actions
    }

    /// Applies `action`, returning the successor state.
    pub fn apply(&self, config: &ModelConfig, action: &Action) -> ModelState {
        let mut next = self.clone();
        let chain = Self::chain(config);
        let head = chain[0];
        let tail = *chain.last().expect("non-empty");
        match action {
            Action::ClientSendRead { key } => {
                let hops: Vec<usize> = chain.iter().rev().skip(1).copied().collect();
                next.push(
                    NodeRef::Client,
                    NodeRef::Switch(tail),
                    Msg::Read { key: *key, hops },
                );
            }
            Action::ClientSendWrite { key, val } => {
                next.writes_issued += 1;
                let hops: Vec<usize> = chain[1..].to_vec();
                next.push(
                    NodeRef::Client,
                    NodeRef::Switch(head),
                    Msg::Write {
                        key: *key,
                        val: *val,
                        ver: 0,
                        hops,
                    },
                );
            }
            Action::ClientRecv => {
                if !next.client_inbox.is_empty() {
                    if let Msg::Reply { key, val, ver } = next.client_inbox.remove(0) {
                        next.prev_kv[key] = next.curr_kv[key];
                        next.curr_kv[key] = (val, ver);
                    }
                }
            }
            Action::SwitchProcess { switch, from } => {
                if let Some(msg) = next.pop(*from, NodeRef::Switch(*switch)) {
                    next.process(config, *switch, msg);
                }
            }
            Action::ChannelDrop { from, to } => {
                next.pop(*from, *to);
                next.channel_ops += 1;
            }
            Action::ChannelDuplicate { from, to } => {
                if let Some(head_msg) = next.channel(*from, *to).first().cloned() {
                    next.push(*from, *to, head_msg);
                }
                next.channel_ops += 1;
            }
            Action::ChannelReorder { from, to } => {
                if let Some(head_msg) = next.pop(*from, *to) {
                    next.push(*from, *to, head_msg);
                }
                next.channel_ops += 1;
            }
            Action::SwitchFail { switch } => {
                let s = *switch;
                next.status[s] = SwitchStatus::Failed;
                next.failed_count += 1;
                let pos = chain.iter().position(|&x| x == s).expect("chain member");
                next.read_fwd[s] = if pos == 0 {
                    Some(NodeRef::Client)
                } else {
                    Some(NodeRef::Switch(chain[pos - 1]))
                };
                next.write_fwd[s] = if pos + 1 == chain.len() {
                    Some(NodeRef::Client)
                } else {
                    Some(NodeRef::Switch(chain[pos + 1]))
                };
                // Traffic caught inside the failed switch's queues is lost.
                next.channels.retain(|(from, to), _| {
                    *from != NodeRef::Switch(s) && *to != NodeRef::Switch(s)
                });
            }
            Action::SwitchRecover { switch, spare } => {
                let s = *switch;
                let pos = chain.iter().position(|&x| x == s).expect("chain member");
                // Copy memory to the spare from the live neighbour the spec
                // picks: the predecessor for a failed tail, the successor
                // otherwise.
                let source = if pos + 1 == chain.len() {
                    self.prev_alive(config, pos)
                } else {
                    self.next_alive(config, pos)
                };
                if let NodeRef::Switch(src) = source {
                    next.mem[*spare] = next.mem[src].clone();
                    // Both the spare and the source shed any in-flight state.
                    next.channels.retain(|(from, to), _| {
                        *from != NodeRef::Switch(*spare)
                            && *to != NodeRef::Switch(*spare)
                            && *from != NodeRef::Switch(src)
                            && *to != NodeRef::Switch(src)
                    });
                }
                next.status[s] = SwitchStatus::Recovered;
                next.read_fwd[s] = Some(NodeRef::Switch(*spare));
                next.write_fwd[s] = Some(NodeRef::Switch(*spare));
            }
        }
        next
    }

    fn next_alive(&self, config: &ModelConfig, pos: usize) -> NodeRef {
        let chain = Self::chain(config);
        for &candidate in chain.iter().skip(pos + 1) {
            match self.status[candidate] {
                SwitchStatus::Alive => return NodeRef::Switch(candidate),
                SwitchStatus::Recovered => {
                    return self.write_fwd[candidate].unwrap_or(NodeRef::Client)
                }
                SwitchStatus::Failed => continue,
            }
        }
        NodeRef::Client
    }

    fn prev_alive(&self, config: &ModelConfig, pos: usize) -> NodeRef {
        let chain = Self::chain(config);
        for &candidate in chain.iter().take(pos).rev() {
            match self.status[candidate] {
                SwitchStatus::Alive => return NodeRef::Switch(candidate),
                SwitchStatus::Recovered => {
                    return self.write_fwd[candidate].unwrap_or(NodeRef::Client)
                }
                SwitchStatus::Failed => continue,
            }
        }
        NodeRef::Client
    }

    /// Switch `s` processes `msg` (Algorithm 1 in the abstract model, plus
    /// the failed-switch forwarding of the TLA+ spec).
    fn process(&mut self, config: &ModelConfig, s: usize, msg: Msg) {
        match self.status[s] {
            SwitchStatus::Alive => match msg {
                Msg::Read { key, .. } => {
                    let (val, ver) = self.mem[s][key];
                    self.push_reply(Msg::Reply { key, val, ver });
                }
                Msg::Write {
                    key,
                    val,
                    ver,
                    hops,
                } => {
                    let assigned = if ver == 0 {
                        self.mem[s][key].1 + 1
                    } else {
                        ver
                    };
                    if assigned > self.mem[s][key].1 {
                        self.mem[s][key] = (val, assigned);
                        if let Some((&next_hop, rest)) = hops.split_first() {
                            self.push(
                                NodeRef::Switch(s),
                                NodeRef::Switch(next_hop),
                                Msg::Write {
                                    key,
                                    val,
                                    ver: assigned,
                                    hops: rest.to_vec(),
                                },
                            );
                        } else {
                            self.push_reply(Msg::Reply {
                                key,
                                val,
                                ver: assigned,
                            });
                        }
                    }
                    // Stale writes are dropped silently (Algorithm 1 line 13).
                }
                Msg::Reply { .. } => {}
            },
            SwitchStatus::Failed | SwitchStatus::Recovered => {
                // The failed switch no longer processes; its neighbours (here
                // folded into the forwarding pointers, as in the TLA+ spec)
                // steer the message onwards.
                let _ = config;
                match msg {
                    Msg::Read { key, mut hops } => {
                        let target = self.read_fwd[s].unwrap_or(NodeRef::Client);
                        match target {
                            NodeRef::Switch(next_sw) => {
                                if !hops.is_empty() {
                                    hops.remove(0);
                                }
                                self.push(
                                    NodeRef::Switch(s),
                                    NodeRef::Switch(next_sw),
                                    Msg::Read { key, hops },
                                );
                            }
                            NodeRef::Client => {
                                // No live replica can answer; the query is lost
                                // and the client would retry.
                            }
                        }
                    }
                    Msg::Write {
                        key,
                        val,
                        ver,
                        mut hops,
                    } => {
                        let target = self.write_fwd[s].unwrap_or(NodeRef::Client);
                        match target {
                            NodeRef::Switch(next_sw) => {
                                if self.status[s] == SwitchStatus::Failed && !hops.is_empty() {
                                    hops.remove(0);
                                }
                                self.push(
                                    NodeRef::Switch(s),
                                    NodeRef::Switch(next_sw),
                                    Msg::Write {
                                        key,
                                        val,
                                        ver,
                                        hops,
                                    },
                                );
                            }
                            NodeRef::Client => {}
                        }
                    }
                    Msg::Reply { .. } => {}
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn config() -> ModelConfig {
        ModelConfig::default()
    }

    #[test]
    fn initial_state_satisfies_invariants() {
        let c = config();
        let s = ModelState::initial(&c);
        assert!(s.consistency_holds());
        assert!(s.update_propagation_holds(&c));
        assert!(!s.enabled_actions(&c).is_empty());
    }

    #[test]
    fn write_propagates_down_the_chain_and_replies() {
        let c = config();
        let mut s = ModelState::initial(&c);
        s = s.apply(&c, &Action::ClientSendWrite { key: 0, val: 1 });
        // Head processes, forwards to 1, then 2, which replies.
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 0,
                from: NodeRef::Client,
            },
        );
        assert_eq!(s.mem[0][0], (1, 1));
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 1,
                from: NodeRef::Switch(0),
            },
        );
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 2,
                from: NodeRef::Switch(1),
            },
        );
        assert_eq!(s.mem[2][0], (1, 1));
        assert!(s.update_propagation_holds(&c));
        s = s.apply(&c, &Action::ClientRecv);
        assert_eq!(s.curr_kv[0], (1, 1));
        assert!(s.consistency_holds());
    }

    #[test]
    fn stale_write_is_ignored_by_replicas() {
        let c = config();
        let mut s = ModelState::initial(&c);
        // Two writes race; the second overtakes the first at switch 1.
        s = s.apply(&c, &Action::ClientSendWrite { key: 0, val: 1 });
        s = s.apply(&c, &Action::ClientSendWrite { key: 0, val: 2 });
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 0,
                from: NodeRef::Client,
            },
        );
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 0,
                from: NodeRef::Client,
            },
        );
        // Reorder the channel 0 -> 1 so version 2 arrives first.
        s = s.apply(
            &c,
            &Action::ChannelReorder {
                from: NodeRef::Switch(0),
                to: NodeRef::Switch(1),
            },
        );
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 1,
                from: NodeRef::Switch(0),
            },
        );
        assert_eq!(s.mem[1][0].1, 2, "newer version applied first");
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 1,
                from: NodeRef::Switch(0),
            },
        );
        assert_eq!(
            s.mem[1][0].1, 2,
            "stale version must not regress the replica"
        );
        assert!(s.update_propagation_holds(&c));
    }

    #[test]
    fn failure_and_recovery_keep_invariants() {
        let c = config();
        let mut s = ModelState::initial(&c);
        s = s.apply(&c, &Action::ClientSendWrite { key: 0, val: 2 });
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 0,
                from: NodeRef::Client,
            },
        );
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 1,
                from: NodeRef::Switch(0),
            },
        );
        s = s.apply(
            &c,
            &Action::SwitchProcess {
                switch: 2,
                from: NodeRef::Switch(1),
            },
        );
        s = s.apply(&c, &Action::SwitchFail { switch: 1 });
        assert_eq!(s.status[1], SwitchStatus::Failed);
        assert!(s.update_propagation_holds(&c));
        s = s.apply(
            &c,
            &Action::SwitchRecover {
                switch: 1,
                spare: 3,
            },
        );
        assert_eq!(s.status[1], SwitchStatus::Recovered);
        // The spare copied its memory from the chain successor (switch 2).
        assert_eq!(s.mem[3][0], s.mem[2][0]);
        assert!(s.update_propagation_holds(&c));
        assert!(s.consistency_holds());
    }

    #[test]
    fn enabled_actions_respect_bounds() {
        let c = ModelConfig {
            max_channel_ops: 0,
            max_failures: 0,
            ..ModelConfig::default()
        };
        let s = ModelState::initial(&c);
        let actions = s.enabled_actions(&c);
        assert!(actions
            .iter()
            .all(|a| !matches!(a, Action::SwitchFail { .. } | Action::ChannelDrop { .. })));
    }
}
