//! # netchain-model
//!
//! A Rust port of the TLA+ specification in the NetChain paper's appendix:
//! a small, explicitly bounded model of the request-handling protocol —
//! switches in a chain, unreliable channels that can drop, duplicate and
//! reorder messages, fail-stop switch failures with failover/recovery
//! forwarding — together with an explicit-state breadth-first model checker
//! and a randomized deep-walk explorer.
//!
//! The two safety properties checked are the ones the paper verifies:
//!
//! * **Consistency** — the version (sequence number) of every key observed by
//!   the client is monotonically non-decreasing, even across failures and
//!   recoveries;
//! * **UpdatePropagation** — along the chain, an upstream (closer-to-head)
//!   switch never stores an older version than a downstream switch
//!   (Invariant 1 of §4.5).
//!
//! The state space is tiny by construction (a handful of switches, one key, a
//! few distinct values, bounded channels and bounded adversarial channel
//! operations), which is exactly how the original TLA+ model is checked with
//! TLC.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod checker;
pub mod random;
pub mod state;

pub use checker::{CheckOutcome, Checker, CheckerConfig};
pub use random::{random_walk, RandomWalkConfig, WalkResult};
pub use state::{Action, ModelConfig, ModelState, Msg, SwitchStatus};
