//! Bounded explicit-state model checking (the TLC role).

use crate::state::{Action, ModelConfig, ModelState};
use std::collections::{HashSet, VecDeque};

/// Checker bounds.
#[derive(Debug, Clone, Copy)]
pub struct CheckerConfig {
    /// Model bounds.
    pub model: ModelConfig,
    /// Maximum number of distinct states to explore (safety valve).
    pub max_states: usize,
}

impl Default for CheckerConfig {
    fn default() -> Self {
        CheckerConfig {
            model: ModelConfig::default(),
            max_states: 200_000,
        }
    }
}

/// The result of a checking run.
#[derive(Debug, Clone)]
pub enum CheckOutcome {
    /// Every reachable state within the bounds satisfies both invariants.
    Verified {
        /// Number of distinct states explored.
        states_explored: usize,
        /// True if exploration hit the `max_states` bound before exhausting
        /// the (bounded) state space.
        truncated: bool,
    },
    /// A reachable state violates an invariant; the action trace from the
    /// initial state is included.
    Violation {
        /// Which invariant failed.
        invariant: &'static str,
        /// The action sequence leading to the violating state.
        trace: Vec<Action>,
        /// Number of distinct states explored before the violation.
        states_explored: usize,
    },
}

impl CheckOutcome {
    /// True if the run verified the invariants.
    pub fn is_verified(&self) -> bool {
        matches!(self, CheckOutcome::Verified { .. })
    }
}

/// Breadth-first explicit-state checker.
pub struct Checker {
    config: CheckerConfig,
}

impl Checker {
    /// Creates a checker.
    pub fn new(config: CheckerConfig) -> Self {
        Checker { config }
    }

    /// Explores the bounded state space breadth-first, checking the
    /// `Consistency` and `UpdatePropagation` invariants in every state.
    pub fn run(&self) -> CheckOutcome {
        let model = self.config.model;
        let initial = ModelState::initial(&model);
        let mut seen: HashSet<ModelState> = HashSet::new();
        // Store (state, trace) — traces are short because the model is small.
        let mut frontier: VecDeque<(ModelState, Vec<Action>)> = VecDeque::new();
        seen.insert(initial.clone());
        frontier.push_back((initial, Vec::new()));
        let mut truncated = false;

        while let Some((state, trace)) = frontier.pop_front() {
            if let Some(invariant) = violated_invariant(&state, &model) {
                return CheckOutcome::Violation {
                    invariant,
                    trace,
                    states_explored: seen.len(),
                };
            }
            if seen.len() >= self.config.max_states {
                truncated = true;
                continue;
            }
            for action in state.enabled_actions(&model) {
                let next = state.apply(&model, &action);
                if seen.insert(next.clone()) {
                    let mut next_trace = trace.clone();
                    next_trace.push(action);
                    frontier.push_back((next, next_trace));
                }
            }
        }
        CheckOutcome::Verified {
            states_explored: seen.len(),
            truncated,
        }
    }
}

fn violated_invariant(state: &ModelState, model: &ModelConfig) -> Option<&'static str> {
    if !state.consistency_holds() {
        return Some("Consistency");
    }
    if !state.update_propagation_holds(model) {
        return Some("UpdatePropagation");
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tiny_model_without_faults_verifies_exhaustively() {
        let config = CheckerConfig {
            model: ModelConfig {
                chain_len: 2,
                spares: 0,
                keys: 1,
                values: 2,
                max_queue: 1,
                max_failures: 0,
                max_version: 2,
                max_channel_ops: 1,
            },
            max_states: 500_000,
        };
        let outcome = Checker::new(config).run();
        match outcome {
            CheckOutcome::Verified {
                states_explored,
                truncated,
            } => {
                assert!(!truncated, "tiny model should be exhausted");
                assert!(states_explored > 10);
            }
            CheckOutcome::Violation {
                invariant, trace, ..
            } => {
                panic!("unexpected violation of {invariant}: {trace:?}")
            }
        }
    }

    #[test]
    fn model_with_failure_and_recovery_verifies_within_bound() {
        let config = CheckerConfig {
            model: ModelConfig {
                chain_len: 3,
                spares: 1,
                keys: 1,
                values: 2,
                max_queue: 1,
                max_failures: 1,
                max_version: 2,
                max_channel_ops: 1,
            },
            max_states: 150_000,
        };
        let outcome = Checker::new(config).run();
        assert!(outcome.is_verified(), "invariants must hold: {outcome:?}");
    }

    #[test]
    fn a_deliberately_broken_model_is_caught() {
        // Sanity check that the checker can find violations at all: start
        // from a state where the client has already observed a version newer
        // than anything the chain will produce, so the next reply regresses.
        let model = ModelConfig {
            chain_len: 2,
            spares: 0,
            keys: 1,
            values: 1,
            max_queue: 1,
            max_failures: 0,
            max_version: 1,
            max_channel_ops: 0,
        };
        let mut broken = ModelState::initial(&model);
        broken.curr_kv[0] = (1, 10);
        // Consistency still holds here (prev <= curr); but after the client
        // receives a fresh read reply with version 0, curr regresses.
        let mut seen_violation = false;
        let mut state = broken;
        for action in [
            Action::ClientSendRead { key: 0 },
            Action::SwitchProcess {
                switch: 1,
                from: crate::state::NodeRef::Client,
            },
            Action::ClientRecv,
        ] {
            state = state.apply(&model, &action);
            if !state.consistency_holds() {
                seen_violation = true;
            }
        }
        assert!(
            seen_violation,
            "the rigged scenario must violate Consistency"
        );
    }
}
