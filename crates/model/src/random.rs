//! Randomized deep walks through the model: where the BFS checker exhausts a
//! tiny state space, the random walker probes much longer behaviours (more
//! writes, more channel mischief, failure + recovery mid-stream) by sampling
//! one enabled action at a time. Used by the property-based tests.

use crate::state::{Action, ModelConfig, ModelState};
use rand::Rng;
use rand::SeedableRng;
use rand_chacha::ChaCha8Rng;

/// Configuration of a random walk.
#[derive(Debug, Clone, Copy)]
pub struct RandomWalkConfig {
    /// Model bounds (typically looser than the BFS bounds).
    pub model: ModelConfig,
    /// Number of steps to take.
    pub steps: usize,
    /// PRNG seed.
    pub seed: u64,
}

impl Default for RandomWalkConfig {
    fn default() -> Self {
        RandomWalkConfig {
            model: ModelConfig {
                max_version: 8,
                max_channel_ops: 6,
                max_queue: 3,
                ..ModelConfig::default()
            },
            steps: 400,
            seed: 1,
        }
    }
}

/// The result of a random walk.
#[derive(Debug, Clone)]
pub struct WalkResult {
    /// Steps actually taken (the walk stops early if no action is enabled).
    pub steps_taken: usize,
    /// The violated invariant and the action trace, if any.
    pub violation: Option<(&'static str, Vec<Action>)>,
    /// The final state.
    pub final_state: ModelState,
}

impl WalkResult {
    /// True if no invariant was violated.
    pub fn is_clean(&self) -> bool {
        self.violation.is_none()
    }
}

/// Performs one random walk.
pub fn random_walk(config: RandomWalkConfig) -> WalkResult {
    let model = config.model;
    let mut rng = ChaCha8Rng::seed_from_u64(config.seed);
    let mut state = ModelState::initial(&model);
    let mut trace = Vec::new();
    for step in 0..config.steps {
        let actions = state.enabled_actions(&model);
        if actions.is_empty() {
            return WalkResult {
                steps_taken: step,
                violation: None,
                final_state: state,
            };
        }
        let action = actions[rng.gen_range(0..actions.len())].clone();
        trace.push(action.clone());
        state = state.apply(&model, &action);
        if !state.consistency_holds() {
            return WalkResult {
                steps_taken: step + 1,
                violation: Some(("Consistency", trace)),
                final_state: state,
            };
        }
        if !state.update_propagation_holds(&model) {
            return WalkResult {
                steps_taken: step + 1,
                violation: Some(("UpdatePropagation", trace)),
                final_state: state,
            };
        }
    }
    WalkResult {
        steps_taken: config.steps,
        violation: None,
        final_state: state,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn many_seeds_stay_clean() {
        for seed in 0..50 {
            let result = random_walk(RandomWalkConfig {
                seed,
                ..Default::default()
            });
            assert!(
                result.is_clean(),
                "seed {seed} violated {:?} after {} steps",
                result.violation,
                result.steps_taken
            );
        }
    }

    #[test]
    fn walks_are_deterministic_per_seed() {
        let a = random_walk(RandomWalkConfig {
            seed: 7,
            ..Default::default()
        });
        let b = random_walk(RandomWalkConfig {
            seed: 7,
            ..Default::default()
        });
        assert_eq!(a.steps_taken, b.steps_taken);
        assert_eq!(a.final_state, b.final_state);
    }

    #[test]
    fn deep_walk_with_failures_is_clean() {
        let config = RandomWalkConfig {
            model: ModelConfig {
                chain_len: 3,
                spares: 2,
                keys: 2,
                values: 3,
                max_queue: 4,
                max_failures: 2,
                max_version: 16,
                max_channel_ops: 12,
            },
            steps: 2_000,
            seed: 42,
        };
        let result = random_walk(config);
        assert!(result.is_clean(), "violation: {:?}", result.violation);
        assert!(result.steps_taken > 100);
    }
}
