//! Real-socket mode: run NetChain switches as threads with UDP sockets on
//! loopback, exchange the exact wire format, and drive them with a
//! socket-based client — the same protocol code as the simulator, no
//! simulator.
//!
//! Run with: `cargo run --example loopback_udp`

use netchain::net::{Deployment, DeploymentConfig};
use netchain::wire::{Key, Value};

fn main() -> std::io::Result<()> {
    let mut deployment = Deployment::start(DeploymentConfig::default())?;
    println!(
        "started {} emulated switches on loopback:",
        deployment.switches().len()
    );
    for handle in deployment.switches() {
        println!("  {} -> {}", handle.ip(), handle.addr());
    }

    let key = Key::from_name("demo/counter");
    let chain = deployment.populate_key(key, &Value::from_u64(0));
    println!("key installed on chain {chain:?}");

    let mut client = deployment.client()?;
    for i in 1..=5u64 {
        let write = client.write(key, Value::from_u64(i))?;
        println!(
            "write {i}: status {:?}, seq {}, latency {}",
            write.status, write.seq, write.latency
        );
    }
    let read = client.read(key)?;
    println!(
        "read back: value {:?} at seq {} (version regressions: {})",
        read.value.as_u64(),
        read.seq,
        client.agent_stats().version_regressions
    );
    assert_eq!(read.value.as_u64(), Some(5));

    // Every chain replica holds the final value: chain replication applied it
    // everywhere before the tail replied.
    for handle in deployment.switches() {
        let stored =
            handle.with_switch(|sw| sw.kv().lookup(&key).map(|slot| sw.kv().read_value(slot)));
        if let Some(value) = stored {
            println!("  {} stores {:?}", handle.ip(), value.as_u64());
        }
    }
    println!("loopback deployment OK");
    Ok(())
}
