//! Distributed locking (§8.5): run the two-phase-locking transaction
//! benchmark with NetChain as the lock server and compare against the
//! calibrated ZooKeeper-style lock server model, at several contention
//! levels.
//!
//! Run with: `cargo run --release --example lock_service`

use netchain::apps::TxnWorkload;
use netchain::baseline::ServerCostModel;
use netchain::experiments::fig11::{netchain_txn_throughput, Fig11Params};
use netchain::experiments::zk::zk_txn_throughput;
use netchain::sim::SimDuration;

fn main() {
    let params = Fig11Params {
        duration: SimDuration::from_millis(100),
        locks_per_txn: 10,
        cold_items: 5_000,
    };
    let cost = ServerCostModel::zookeeper_calibrated();
    let clients = 10;

    println!("2PL transactions, {clients} clients, 10 locks per transaction");
    println!(
        "{:>18}{:>12}{:>22}{:>22}",
        "contention index", "hot items", "NetChain (txn/s)", "ZooKeeper (txn/s)"
    );
    for contention in [0.001, 0.01, 0.1, 1.0] {
        let workload = TxnWorkload {
            contention_index: contention,
            ..Default::default()
        };
        let netchain = netchain_txn_throughput(clients, contention, params);
        let zookeeper = zk_txn_throughput(&cost, 3, clients, params.locks_per_txn, contention);
        println!(
            "{:>18}{:>12}{:>22.0}{:>22.0}",
            contention,
            workload.hot_items(),
            netchain,
            zookeeper
        );
    }
    println!();
    println!(
        "NetChain's in-network CAS locks complete in microseconds, so even under \
         contention the lock server is never the bottleneck — the shape of Figure 11."
    );
}
