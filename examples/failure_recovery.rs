//! Failure handling walkthrough (§5, §8.4): fail a chain switch under a
//! write-heavy workload, watch fast failover restore service within
//! milliseconds, then watch group-by-group failure recovery restore the
//! replication factor while barely denting throughput.
//!
//! Run with: `cargo run --release --example failure_recovery`

use netchain::core::{ClusterConfig, ControllerConfig, NetChainCluster, WorkloadConfig};
use netchain::sim::{SimDuration, SimTime};
use netchain::wire::Ipv4Addr;

fn main() {
    let config = ClusterConfig {
        // S0–S2 hold the data; S3 is the spare the controller recovers onto.
        ring_switches: Some(3),
        controller: ControllerConfig {
            recovery_start_delay: SimDuration::from_secs(5),
            total_sync_duration: SimDuration::from_secs(20),
            replacement: Some(Ipv4Addr::for_switch(3)),
            recovery_groups: Some(20),
            ..ControllerConfig::default()
        },
        ..Default::default()
    };
    let mut cluster = NetChainCluster::testbed(config);
    cluster.populate_store(5_000, 64);
    cluster.install_workload_client(
        0,
        WorkloadConfig {
            duration: SimDuration::from_secs(40),
            rate_qps: 5_000.0,
            write_ratio: 0.5,
            num_keys: 5_000,
            throughput_bucket: SimDuration::from_secs(1),
            ..Default::default()
        },
    );
    // Fail S1 ten seconds in.
    cluster.fail_switch_at(SimTime::ZERO + SimDuration::from_secs(10), 1);
    cluster.sim.run_for(SimDuration::from_secs(42));

    let client = cluster.workload_client(0).expect("installed");
    println!("time(s)  completed queries/s");
    for (t, rate) in client.throughput().rate_series() {
        let marker = match t as u64 {
            10 => "  <- S1 fails (fast failover)",
            15 => "  <- recovery starts (20 virtual groups)",
            35 => "  <- recovery complete",
            _ => "",
        };
        println!("{t:>6.0}  {rate:>10.0}{marker}");
    }
    let stats = client.agent_stats();
    println!(
        "\ncompleted {} of {} issued, {} retries, {} version regressions (must be 0)",
        stats.completed, stats.issued, stats.retries, stats.version_regressions
    );
    let record = &cluster.controller().records()[0];
    println!(
        "controller: recovered {} virtual groups of {} onto {}",
        record.groups_recovered, record.failed_ip, record.replacement_ip
    );
    assert_eq!(stats.version_regressions, 0);
}
