//! Quickstart: bring up the four-switch NetChain testbed in the simulator,
//! install a key, write it, read it back, and take an exclusive lock — the
//! whole public API in ~60 lines.
//!
//! Run with: `cargo run --example quickstart`

use netchain::core::{ClusterConfig, KvOp, NetChainCluster};
use netchain::sim::SimDuration;
use netchain::wire::{Key, Value};

fn main() {
    // 1. Build the Figure-8 testbed: four switches, four hosts, a controller,
    //    chains of three switches chosen by consistent hashing.
    let mut cluster = NetChainCluster::testbed(ClusterConfig::default());
    println!(
        "testbed up: {} switches, {} hosts, replication factor {}",
        cluster.layout.switches.len(),
        cluster.layout.hosts.len(),
        cluster.config().replication
    );

    // 2. Install keys (the controller-side half of Insert).
    let config_key = Key::from_name("service/timeout-ms");
    let lock_key = Key::from_name("locks/order-17");
    let chain = cluster.populate_key(config_key, &Value::from_u64(250));
    cluster.populate_key(lock_key, &Value::from_u64(0));
    println!(
        "key {config_key} served by chain {:?} (head -> tail)",
        chain.switches
    );

    // 3. Run a scripted client: write, read, acquire the lock, fail to
    //    acquire it again, release it.
    cluster.install_scripted_client(
        0,
        vec![
            KvOp::Write(config_key, Value::from_u64(500)),
            KvOp::Read(config_key),
            KvOp::Cas {
                key: lock_key,
                expected: 0,
                new: 42,
            },
            KvOp::Cas {
                key: lock_key,
                expected: 0,
                new: 43,
            },
            KvOp::Cas {
                key: lock_key,
                expected: 42,
                new: 0,
            },
        ],
    );
    cluster.sim.run_for(SimDuration::from_millis(50));

    // 4. Inspect the results.
    let client = cluster.scripted_client(0).expect("client installed");
    assert!(client.is_done());
    for (i, done) in client.results().iter().enumerate() {
        println!(
            "op {i}: {:?} -> status {:?}, value {:?}, latency {}",
            done.op,
            done.status,
            done.value.as_u64(),
            done.latency
        );
    }
    let read = &client.results()[1];
    assert_eq!(read.value.as_u64(), Some(500), "read sees the prior write");
    assert!(
        client.results()[3].status == Some(netchain::wire::QueryStatus::CasFailed),
        "a held lock cannot be stolen"
    );
    println!("quickstart OK: strong consistency and CAS locks over the in-network store");
}
